#ifndef QKC_CIRCUIT_SIMULATION_PATH_H
#define QKC_CIRCUIT_SIMULATION_PATH_H

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/circuit.h"

namespace qkc {

/**
 * How a circuit is lowered to a simulation path (a binary contraction tree
 * over {initial state, gate_1..gate_m}):
 *
 *   - Linear: today's behavior — every operation is a matrix-vector node on
 *     the spine, applied left to right. The tree degenerates to a chain.
 *   - Pairwise: recursive gate-gate grouping — each channel-free run of
 *     gates is halved recursively into matrix-matrix nodes, and only the
 *     run's root operator touches the state.
 *   - Bracket: consecutive k-gate windows are folded (left-deep) into one
 *     operator each; window roots are applied to the state in order.
 *   - Auto: resolves to Linear on every backend (the planner that is never
 *     worse; structured circuits opt into Pairwise/Bracket explicitly).
 *
 * Noise channels are spine barriers on every planner: a channel is not a
 * matrix, so it can never sit under a matrix-matrix node — it splits the
 * gate list into independent channel-free segments.
 */
enum class PathPlanner { Auto, Linear, Pairwise, Bracket };

/** Planner choice plus its parameters (the `path=` backend-spec option). */
struct PathOptions {
    PathPlanner planner = PathPlanner::Auto;
    std::size_t bracket = 4; ///< window size for PathPlanner::Bracket (>= 2)

    /** True when the planner actually groups gates (not Auto/Linear). */
    bool active() const
    {
        return planner == PathPlanner::Pairwise ||
               planner == PathPlanner::Bracket;
    }
};

/** Canonical planner name: "auto", "linear", "pairwise", "bracket". */
const char* pathPlannerName(PathPlanner planner);

/** Spec-style label for the options, e.g. "pairwise" or "bracket4". */
std::string pathOptionLabel(const PathOptions& options);

/**
 * Parses a `path=` option value: auto | linear | pairwise | bracketN with
 * N >= 2 (bare "bracket" means bracket4). Returns false on anything else;
 * `out` is only written on success.
 */
bool parsePathPlanner(const std::string& value, PathOptions* out);

/**
 * A simulation path: the contraction tree itself. Nodes reference circuit
 * operations by index; interior nodes reference earlier entries of `nodes`
 * (children always precede their parent, so a forward walk is a valid
 * evaluation order and deterministic task order).
 *
 * Conventions:
 *   - An MM node is the operator product later * earlier: `left` is the
 *     subtree applied first in circuit order, `right` the one applied after.
 *   - An MV node applies an operator to the evolving state: `left` is the
 *     state subtree (the spine), `right` the operator subtree — or a
 *     channel Op leaf, which only ever appears directly under an MV node.
 */
struct SimulationPath {
    struct Node {
        enum class Kind {
            State, ///< the initial |0...0> state (exactly one, index 0)
            Op,    ///< leaf: circuit operation `opIndex`
            MM,    ///< matrix-matrix product: value(right) * value(left)
            MV     ///< matrix-vector apply: value(right) applied to left
        };

        Kind kind = Kind::Op;
        std::size_t opIndex = 0;   ///< valid for Op leaves only
        std::ptrdiff_t left = -1;  ///< child node index (MM/MV)
        std::ptrdiff_t right = -1; ///< child node index (MM/MV)
    };

    std::vector<Node> nodes;
    std::ptrdiff_t root = -1;     ///< final state node (last spine MV/State)
    PathPlanner planner = PathPlanner::Linear; ///< resolved (never Auto)
    std::size_t mmNodes = 0;      ///< number of MM nodes in the tree

    bool empty() const { return nodes.empty(); }
};

/**
 * Lowers `circuit` to a simulation path under `options`. Auto resolves to
 * Linear. The tree never reorders operations: every planner preserves the
 * circuit's left-to-right gate order inside and across segments, so an
 * executor that evaluates nodes in index order reproduces the linear
 * semantics exactly (up to floating-point association inside MM nodes).
 */
SimulationPath planSimulationPath(const Circuit& circuit,
                                  const PathOptions& options);

} // namespace qkc

#endif // QKC_CIRCUIT_SIMULATION_PATH_H
