#include "circuit/circuit.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace qkc {

Circuit::Circuit(std::size_t numQubits) : numQubits_(numQubits)
{
    if (numQubits == 0 || numQubits > 63)
        throw std::invalid_argument("Circuit: qubit count must be in [1, 63]");
}

std::size_t
Circuit::gateCount() const
{
    std::size_t n = 0;
    for (const auto& op : ops_)
        if (std::holds_alternative<Gate>(op))
            ++n;
    return n;
}

std::size_t
Circuit::noiseCount() const
{
    return ops_.size() - gateCount();
}

void
Circuit::append(Gate gate)
{
    checkQubits(gate.qubits());
    ops_.emplace_back(std::move(gate));
}

void
Circuit::append(NoiseChannel channel)
{
    checkQubits(channel.qubits());
    ops_.emplace_back(std::move(channel));
}

void
Circuit::extend(const Circuit& other)
{
    if (other.numQubits() != numQubits_)
        throw std::invalid_argument("Circuit::extend: qubit count mismatch");
    for (const auto& op : other.ops_)
        ops_.push_back(op);
}

Circuit
Circuit::withNoiseAfterEachGate(NoiseKind kind, double p) const
{
    auto makeChannel = [&](std::size_t q) {
        switch (kind) {
          case NoiseKind::BitFlip: return NoiseChannel::bitFlip(q, p);
          case NoiseKind::PhaseFlip: return NoiseChannel::phaseFlip(q, p);
          case NoiseKind::Depolarizing: return NoiseChannel::depolarizing(q, p);
          case NoiseKind::AmplitudeDamping:
            return NoiseChannel::amplitudeDamping(q, p);
          case NoiseKind::PhaseDamping:
            return NoiseChannel::phaseDamping(q, p);
          default:
            throw std::invalid_argument(
                "withNoiseAfterEachGate: kind needs explicit parameters");
        }
    };

    Circuit noisy(numQubits_);
    for (const auto& op : ops_) {
        noisy.ops_.push_back(op);
        if (const Gate* g = std::get_if<Gate>(&op)) {
            for (std::size_t q : g->qubits())
                noisy.append(makeChannel(q));
        }
    }
    return noisy;
}

Circuit
Circuit::inverse() const
{
    Circuit inv(numQubits_);
    for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
        const Gate* g = std::get_if<Gate>(&*it);
        if (!g)
            throw std::invalid_argument(
                "Circuit::inverse: noise channels are not invertible");
        switch (g->kind()) {
          case GateKind::S:
            inv.append(Gate(GateKind::Sdg, g->qubits()));
            break;
          case GateKind::Sdg:
            inv.append(Gate(GateKind::S, g->qubits()));
            break;
          case GateKind::T:
            inv.append(Gate(GateKind::Tdg, g->qubits()));
            break;
          case GateKind::Tdg:
            inv.append(Gate(GateKind::T, g->qubits()));
            break;
          case GateKind::Rx:
          case GateKind::Ry:
          case GateKind::Rz:
          case GateKind::PhaseZ:
          case GateKind::CRz:
          case GateKind::CPhase:
          case GateKind::ZZ:
            inv.append(Gate(g->kind(), g->qubits(), -g->param()));
            break;
          case GateKind::Custom1Q:
          case GateKind::Custom2Q:
            inv.append(Gate::custom(g->qubits(), g->unitary().adjoint(),
                                    g->name() + "^-1"));
            break;
          default:
            // Self-inverse: I, X, Y, Z, H, CNOT, CZ, SWAP, CCX, CCZ, CSWAP.
            inv.append(*g);
            break;
        }
    }
    return inv;
}

std::vector<std::size_t>
Circuit::parameterizedGateIndices() const
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        const Gate* g = std::get_if<Gate>(&ops_[i]);
        if (g && g->isParameterized())
            idx.push_back(i);
    }
    return idx;
}

void
Circuit::setGateParam(std::size_t opIndex, double theta)
{
    Gate* g = std::get_if<Gate>(&ops_.at(opIndex));
    if (!g || !g->isParameterized())
        throw std::invalid_argument("setGateParam: not a parameterized gate");
    g->setParam(theta);
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    os << "Circuit(" << numQubits_ << " qubits, " << gateCount() << " gates, "
       << noiseCount() << " noise ops)\n";
    for (const auto& op : ops_) {
        if (const Gate* g = std::get_if<Gate>(&op)) {
            os << "  " << g->name() << " q";
            for (std::size_t i = 0; i < g->qubits().size(); ++i)
                os << (i ? ",q" : "") << g->qubits()[i];
        } else {
            const auto& ch = std::get<NoiseChannel>(op);
            os << "  " << ch.name() << " q";
            for (std::size_t i = 0; i < ch.qubits().size(); ++i)
                os << (i ? ",q" : "") << ch.qubits()[i];
        }
        os << "\n";
    }
    return os.str();
}

Circuit&
Circuit::add(GateKind kind, std::vector<std::size_t> qubits, double param)
{
    append(Gate(kind, std::move(qubits), param));
    return *this;
}

void
Circuit::checkQubits(const std::vector<std::size_t>& qubits) const
{
    for (std::size_t q : qubits) {
        if (q >= numQubits_)
            throw std::out_of_range("Circuit: qubit index out of range");
    }
}

std::uint64_t
basisIndex(const std::vector<int>& bits)
{
    std::uint64_t idx = 0;
    for (int b : bits) {
        assert(b == 0 || b == 1);
        idx = (idx << 1) | static_cast<std::uint64_t>(b);
    }
    return idx;
}

std::vector<int>
basisBits(std::uint64_t index, std::size_t numQubits)
{
    std::vector<int> bits(numQubits);
    for (std::size_t i = 0; i < numQubits; ++i)
        bits[i] = static_cast<int>((index >> (numQubits - 1 - i)) & 1);
    return bits;
}

std::string
basisKet(std::uint64_t index, std::size_t numQubits)
{
    std::string s = "|";
    for (int b : basisBits(index, numQubits))
        s += static_cast<char>('0' + b);
    s += ">";
    return s;
}

} // namespace qkc
