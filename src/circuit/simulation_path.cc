#include "circuit/simulation_path.h"

#include <algorithm>
#include <cstdlib>
#include <variant>

namespace qkc {

namespace {

using Node = SimulationPath::Node;
using Kind = SimulationPath::Node::Kind;

std::ptrdiff_t
pushNode(SimulationPath& path, Node node)
{
    path.nodes.push_back(node);
    return static_cast<std::ptrdiff_t>(path.nodes.size()) - 1;
}

std::ptrdiff_t
opLeaf(SimulationPath& path, std::size_t opIndex)
{
    Node n;
    n.kind = Kind::Op;
    n.opIndex = opIndex;
    return pushNode(path, n);
}

std::ptrdiff_t
mmNode(SimulationPath& path, std::ptrdiff_t earlier, std::ptrdiff_t later)
{
    Node n;
    n.kind = Kind::MM;
    n.left = earlier;
    n.right = later;
    ++path.mmNodes;
    return pushNode(path, n);
}

/** Balanced recursive pairing over segment[lo, hi): earlier half on the
 *  left, later half on the right, so the product order is preserved. */
std::ptrdiff_t
buildPairwise(SimulationPath& path, const std::vector<std::size_t>& segment,
              std::size_t lo, std::size_t hi)
{
    if (hi - lo == 1)
        return opLeaf(path, segment[lo]);
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::ptrdiff_t earlier = buildPairwise(path, segment, lo, mid);
    const std::ptrdiff_t later = buildPairwise(path, segment, mid, hi);
    return mmNode(path, earlier, later);
}

} // namespace

const char*
pathPlannerName(PathPlanner planner)
{
    switch (planner) {
    case PathPlanner::Auto:
        return "auto";
    case PathPlanner::Linear:
        return "linear";
    case PathPlanner::Pairwise:
        return "pairwise";
    case PathPlanner::Bracket:
        return "bracket";
    }
    return "linear";
}

std::string
pathOptionLabel(const PathOptions& options)
{
    if (options.planner == PathPlanner::Bracket)
        return "bracket" + std::to_string(options.bracket);
    return pathPlannerName(options.planner);
}

bool
parsePathPlanner(const std::string& value, PathOptions* out)
{
    PathOptions parsed;
    if (value == "auto") {
        parsed.planner = PathPlanner::Auto;
    } else if (value == "linear") {
        parsed.planner = PathPlanner::Linear;
    } else if (value == "pairwise") {
        parsed.planner = PathPlanner::Pairwise;
    } else if (value.rfind("bracket", 0) == 0) {
        parsed.planner = PathPlanner::Bracket;
        const std::string digits = value.substr(7);
        if (!digits.empty()) {
            for (char c : digits)
                if (c < '0' || c > '9')
                    return false;
            if (digits.size() > 6)
                return false;
            const long k = std::strtol(digits.c_str(), nullptr, 10);
            if (k < 2)
                return false;
            parsed.bracket = static_cast<std::size_t>(k);
        }
    } else {
        return false;
    }
    if (out)
        *out = parsed;
    return true;
}

SimulationPath
planSimulationPath(const Circuit& circuit, const PathOptions& options)
{
    SimulationPath path;
    path.planner = options.planner == PathPlanner::Auto ? PathPlanner::Linear
                                                        : options.planner;
    const std::size_t bracket = options.bracket < 2 ? 2 : options.bracket;
    path.nodes.reserve(2 * circuit.size() + 1);

    Node state;
    state.kind = Kind::State;
    std::ptrdiff_t spine = pushNode(path, state);

    const auto applyOnSpine = [&](std::ptrdiff_t opTree) {
        Node mv;
        mv.kind = Kind::MV;
        mv.left = spine;
        mv.right = opTree;
        spine = pushNode(path, mv);
    };

    // Gate indices of the current channel-free segment.
    std::vector<std::size_t> segment;
    const auto flushSegment = [&]() {
        if (segment.empty())
            return;
        switch (path.planner) {
        case PathPlanner::Auto: // resolved above; unreachable
        case PathPlanner::Linear:
            for (std::size_t i : segment)
                applyOnSpine(opLeaf(path, i));
            break;
        case PathPlanner::Pairwise:
            applyOnSpine(buildPairwise(path, segment, 0, segment.size()));
            break;
        case PathPlanner::Bracket:
            for (std::size_t w = 0; w < segment.size(); w += bracket) {
                const std::size_t end =
                    std::min(segment.size(), w + bracket);
                std::ptrdiff_t acc = opLeaf(path, segment[w]);
                for (std::size_t j = w + 1; j < end; ++j)
                    acc = mmNode(path, acc, opLeaf(path, segment[j]));
                applyOnSpine(acc);
            }
            break;
        }
        segment.clear();
    };

    const auto& ops = circuit.operations();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (std::holds_alternative<NoiseChannel>(ops[i])) {
            // Channels are spine barriers: never under an MM node.
            flushSegment();
            applyOnSpine(opLeaf(path, i));
        } else {
            segment.push_back(i);
        }
    }
    flushSegment();

    path.root = spine;
    return path;
}

} // namespace qkc
