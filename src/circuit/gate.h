#ifndef QKC_CIRCUIT_GATE_H
#define QKC_CIRCUIT_GATE_H

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace qkc {

/**
 * Gate vocabulary. The set mirrors what the paper's workloads need: the
 * Clifford+T basics for the validation algorithm suite (Deutsch-Jozsa ...
 * Shor), parameterized rotations for the variational workloads (QAOA / VQE),
 * and escape hatches (Custom1Q / Custom2Q) for arbitrary unitaries such as
 * the GRCS random-circuit gates.
 */
enum class GateKind {
    I,
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    T,
    Tdg,
    Rx,       ///< exp(-i theta X / 2)
    Ry,       ///< exp(-i theta Y / 2)
    Rz,       ///< exp(-i theta Z / 2)
    PhaseZ,   ///< diag(1, e^{i theta})
    CNOT,
    CZ,
    SWAP,
    CRz,      ///< controlled Rz(theta)
    CPhase,   ///< controlled diag(1, e^{i theta})
    ZZ,       ///< exp(-i theta Z(x)Z / 2), the QAOA phase separator
    CCX,      ///< Toffoli
    CCZ,
    CSWAP,    ///< Fredkin
    Custom1Q,
    Custom2Q,
};

/**
 * A quantum gate instance: a kind, the qubits it acts on (qubits[0] is the
 * most significant bit of the gate's local basis index; controls precede
 * targets), an optional rotation angle, and, for Custom*, an explicit
 * unitary.
 */
class Gate {
  public:
    Gate(GateKind kind, std::vector<std::size_t> qubits, double param = 0.0);

    /** Builds a custom gate from an explicit unitary (2x2 or 4x4). */
    static Gate custom(std::vector<std::size_t> qubits, Matrix unitary,
                       std::string label = "U");

    GateKind kind() const { return kind_; }
    const std::vector<std::size_t>& qubits() const { return qubits_; }
    std::size_t arity() const { return qubits_.size(); }
    double param() const { return param_; }

    /**
     * Replaces the rotation angle. Only meaningful for parameterized kinds;
     * used by the variational drivers to sweep circuit parameters without
     * rebuilding the circuit.
     */
    void setParam(double param) { param_ = param; }

    /** True for Rx/Ry/Rz/PhaseZ/CRz/CPhase/ZZ. */
    bool isParameterized() const;

    /** The full 2^arity x 2^arity unitary in the gate's local basis. */
    Matrix unitary() const;

    /** Short mnemonic, e.g. "H", "CNOT", "Rz(0.500)". */
    std::string name() const;

  private:
    GateKind kind_;
    std::vector<std::size_t> qubits_;
    double param_ = 0.0;
    Matrix custom_;
    std::string label_;
};

} // namespace qkc

#endif // QKC_CIRCUIT_GATE_H
