#include "circuit/qasm.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace qkc {

namespace {

const char*
noiseKindTag(NoiseKind kind)
{
    switch (kind) {
      case NoiseKind::BitFlip: return "bitflip";
      case NoiseKind::PhaseFlip: return "phaseflip";
      case NoiseKind::Depolarizing: return "depolarizing";
      case NoiseKind::AsymmetricDepolarizing: return "adepolarizing";
      case NoiseKind::AmplitudeDamping: return "ampdamp";
      case NoiseKind::PhaseDamping: return "phasedamp";
      case NoiseKind::GeneralizedAmplitudeDamping: return "gad";
      case NoiseKind::TwoQubitDepolarizing: return "depol2q";
    }
    return "?";
}

/**
 * Reconstructs the scalar parameters of a channel from its Kraus operators
 * (they were built from closed-form matrices, so the entries are exact).
 */
std::vector<double>
noiseParams(const NoiseChannel& ch)
{
    const auto& k = ch.krausOperators();
    switch (ch.kind()) {
      case NoiseKind::BitFlip:
      case NoiseKind::PhaseFlip: {
        // E1 = sqrt(p) * Pauli: any nonzero entry has magnitude sqrt(p).
        double s = 0.0;
        for (std::size_t r = 0; r < 2; ++r)
            for (std::size_t c = 0; c < 2; ++c)
                s = std::max(s, std::abs(k[1](r, c)));
        return {s * s};
      }
      case NoiseKind::Depolarizing: {
        double sx = 0.0;
        for (std::size_t r = 0; r < 2; ++r)
            for (std::size_t c = 0; c < 2; ++c)
                sx = std::max(sx, std::abs(k[1](r, c)));
        return {3.0 * sx * sx};
      }
      case NoiseKind::AsymmetricDepolarizing: {
        auto maxAbs = [](const Matrix& m) {
            double s = 0.0;
            for (std::size_t r = 0; r < 2; ++r)
                for (std::size_t c = 0; c < 2; ++c)
                    s = std::max(s, std::abs(m(r, c)));
            return s;
        };
        double px = maxAbs(k[1]), py = maxAbs(k[2]), pz = maxAbs(k[3]);
        return {px * px, py * py, pz * pz};
      }
      case NoiseKind::AmplitudeDamping:
      case NoiseKind::PhaseDamping: {
        double sg = std::abs(k[1](k[0].rows() - 1, 1));
        if (ch.kind() == NoiseKind::AmplitudeDamping)
            sg = std::abs(k[1](0, 1));
        return {sg * sg};
      }
      case NoiseKind::GeneralizedAmplitudeDamping: {
        // E0 = sqrt(p) diag(1, sqrt(1-g)); E1 = sqrt(p) offdiag(sqrt(g)).
        double sp = std::abs(k[0](0, 0));
        double p = sp * sp;
        double sg = std::abs(k[1](0, 1)) / sp;
        return {sg * sg, p};
      }
      case NoiseKind::TwoQubitDepolarizing: {
        double s0 = std::abs(k[0](0, 0));
        return {1.0 - s0 * s0};
      }
    }
    return {};
}

NoiseChannel
makeChannel(const std::string& tag, const std::vector<std::size_t>& qubits,
            const std::vector<double>& params)
{
    std::size_t qubit = qubits.front();
    if (tag == "depol2q")
        return NoiseChannel::twoQubitDepolarizing(qubits.at(0), qubits.at(1),
                                                  params.at(0));
    if (tag == "bitflip")
        return NoiseChannel::bitFlip(qubit, params.at(0));
    if (tag == "phaseflip")
        return NoiseChannel::phaseFlip(qubit, params.at(0));
    if (tag == "depolarizing")
        return NoiseChannel::depolarizing(qubit, params.at(0));
    if (tag == "adepolarizing")
        return NoiseChannel::asymmetricDepolarizing(qubit, params.at(0),
                                                    params.at(1),
                                                    params.at(2));
    if (tag == "ampdamp")
        return NoiseChannel::amplitudeDamping(qubit, params.at(0));
    if (tag == "phasedamp")
        return NoiseChannel::phaseDamping(qubit, params.at(0));
    if (tag == "gad")
        return NoiseChannel::generalizedAmplitudeDamping(qubit, params.at(0),
                                                         params.at(1));
    throw std::invalid_argument("parseQasm: unknown noise tag " + tag);
}

/** Minimal arithmetic evaluator for QASM angle expressions. */
class AngleParser {
  public:
    AngleParser(const std::string& text, std::size_t maxDepth)
        : text_(text), maxDepth_(maxDepth)
    {
    }

    double parse()
    {
        double v = expr();
        skipWs();
        if (pos_ != text_.size())
            throw std::invalid_argument("parseQasm: bad angle: " + text_);
        if (!std::isfinite(v))
            throw std::invalid_argument("parseQasm: non-finite angle: " +
                                        text_);
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
    bool consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    /**
     * Recursion guard: unary minus and parentheses both recurse once per
     * nesting level, so a hostile "((((…" or "----…" chain would otherwise
     * walk the stack off a cliff instead of returning an error.
     */
    struct DepthGuard {
        explicit DepthGuard(AngleParser& p) : parser(p)
        {
            if (++parser.depth_ > parser.maxDepth_)
                throw std::invalid_argument(
                    "parseQasm: angle expression nested too deeply: " +
                    parser.text_);
        }
        ~DepthGuard() { --parser.depth_; }
        AngleParser& parser;
    };
    double expr()
    {
        double v = term();
        for (;;) {
            if (consume('+'))
                v += term();
            else if (consume('-'))
                v -= term();
            else
                return v;
        }
    }
    double term()
    {
        double v = unary();
        for (;;) {
            if (consume('*'))
                v *= unary();
            else if (consume('/'))
                v /= unary();
            else
                return v;
        }
    }
    double unary()
    {
        DepthGuard guard(*this);
        if (consume('-'))
            return -unary();
        return atom();
    }
    double atom()
    {
        skipWs();
        if (consume('(')) {
            DepthGuard guard(*this);
            double v = expr();
            if (!consume(')'))
                throw std::invalid_argument("parseQasm: missing ')'");
            return v;
        }
        if (text_.compare(pos_, 2, "pi") == 0) {
            pos_ += 2;
            return M_PI;
        }
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(text_[end]) || text_[end] == '.' ||
                text_[end] == 'e' || text_[end] == 'E' ||
                ((text_[end] == '+' || text_[end] == '-') && end > pos_ &&
                 (text_[end - 1] == 'e' || text_[end - 1] == 'E'))))
            ++end;
        if (end == pos_)
            throw std::invalid_argument("parseQasm: bad angle: " + text_);
        double v = 0.0;
        try {
            v = std::stod(text_.substr(pos_, end - pos_));
        } catch (const std::exception&) {
            // stoull/stod throw out_of_range on e.g. "1e99999" — fold it
            // into the parser's own error currency.
            throw std::invalid_argument("parseQasm: angle literal out of "
                                        "range: " + text_);
        }
        pos_ = end;
        return v;
    }

    std::string text_;
    std::size_t maxDepth_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

/**
 * An unsigned decimal index (qreg size, qubit operand) with nothing else in
 * the token — std::stoul alone would accept "3garbage", throw raw
 * out_of_range on 2^70, and accept "-1" by wrapping it to 2^64-7.
 */
std::size_t
parseIndex(const std::string& token, const char* what)
{
    if (token.empty() ||
        token.find_first_not_of("0123456789") != std::string::npos)
        throw QasmParseError(std::string("parseQasm: bad ") + what + ": \"" +
                             token + "\"");
    try {
        return std::stoul(token);
    } catch (const std::exception&) {
        throw QasmParseError(std::string("parseQasm: ") + what +
                             " out of range: \"" + token + "\"");
    }
}

} // namespace

void
writeQasm(const Circuit& circuit, std::ostream& os)
{
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "qreg q[" << circuit.numQubits() << "];\n";
    os << "creg c[" << circuit.numQubits() << "];\n";

    auto q = [](std::size_t i) {
        std::ostringstream s;
        s << "q[" << i << "]";
        return s.str();
    };

    for (const auto& op : circuit.operations()) {
        if (const NoiseChannel* ch = std::get_if<NoiseChannel>(&op)) {
            os << "// qkc.noise " << noiseKindTag(ch->kind());
            for (std::size_t qi : ch->qubits())
                os << " " << qi;
            for (double p : noiseParams(*ch))
                os << " " << p;
            os << "\n";
            continue;
        }
        const Gate& g = std::get<Gate>(op);
        const auto& qs = g.qubits();
        char angle[64];
        std::snprintf(angle, sizeof(angle), "%.17g", g.param());
        switch (g.kind()) {
          case GateKind::I: os << "id " << q(qs[0]); break;
          case GateKind::X: os << "x " << q(qs[0]); break;
          case GateKind::Y: os << "y " << q(qs[0]); break;
          case GateKind::Z: os << "z " << q(qs[0]); break;
          case GateKind::H: os << "h " << q(qs[0]); break;
          case GateKind::S: os << "s " << q(qs[0]); break;
          case GateKind::Sdg: os << "sdg " << q(qs[0]); break;
          case GateKind::T: os << "t " << q(qs[0]); break;
          case GateKind::Tdg: os << "tdg " << q(qs[0]); break;
          case GateKind::Rx: os << "rx(" << angle << ") " << q(qs[0]); break;
          case GateKind::Ry: os << "ry(" << angle << ") " << q(qs[0]); break;
          case GateKind::Rz: os << "rz(" << angle << ") " << q(qs[0]); break;
          case GateKind::PhaseZ:
            os << "u1(" << angle << ") " << q(qs[0]);
            break;
          case GateKind::CNOT:
            os << "cx " << q(qs[0]) << "," << q(qs[1]);
            break;
          case GateKind::CZ:
            os << "cz " << q(qs[0]) << "," << q(qs[1]);
            break;
          case GateKind::SWAP:
            os << "swap " << q(qs[0]) << "," << q(qs[1]);
            break;
          case GateKind::CRz:
            os << "crz(" << angle << ") " << q(qs[0]) << "," << q(qs[1]);
            break;
          case GateKind::CPhase:
            os << "cu1(" << angle << ") " << q(qs[0]) << "," << q(qs[1]);
            break;
          case GateKind::ZZ:
            os << "rzz(" << angle << ") " << q(qs[0]) << "," << q(qs[1]);
            break;
          case GateKind::CCX:
            os << "ccx " << q(qs[0]) << "," << q(qs[1]) << "," << q(qs[2]);
            break;
          case GateKind::CCZ:
            // qelib1 has no ccz; conjugate a Toffoli with Hadamards.
            os << "h " << q(qs[2]) << ";\n";
            os << "ccx " << q(qs[0]) << "," << q(qs[1]) << "," << q(qs[2])
               << ";\n";
            os << "h " << q(qs[2]);
            break;
          case GateKind::CSWAP:
            os << "cswap " << q(qs[0]) << "," << q(qs[1]) << "," << q(qs[2]);
            break;
          case GateKind::Custom1Q:
          case GateKind::Custom2Q:
            throw std::invalid_argument(
                "writeQasm: custom unitaries have no QASM 2.0 spelling");
        }
        os << ";\n";
    }
}

std::string
toQasm(const Circuit& circuit)
{
    std::ostringstream os;
    writeQasm(circuit, os);
    return os.str();
}

Circuit
parseQasm(std::istream& is, const QasmLimits& limits)
{
    // Stop at the byte cap instead of draining an unbounded stream into
    // memory; one extra byte distinguishes "exactly at the cap" from
    // "past it" for the size check below.
    std::string text;
    text.reserve(std::min<std::size_t>(limits.maxBytes + 1, 1u << 16));
    std::istreambuf_iterator<char> it(is), end;
    while (it != end && text.size() <= limits.maxBytes)
        text.push_back(*it++);
    return parseQasm(text, limits);
}

Circuit
parseQasm(const std::string& text, const QasmLimits& limits)
{
    if (text.size() > limits.maxBytes)
        throw QasmParseError(
            "parseQasm: program exceeds the " +
            std::to_string(limits.maxBytes) + "-byte limit");
    // Pre-scan: find the qreg size so the Circuit can be constructed.
    std::unique_ptr<Circuit> circuit;
    std::string qregName;

    // Split into statements, keeping // qkc.noise comment lines.
    std::istringstream lines(text);
    std::string line;
    std::vector<std::string> statements;
    while (std::getline(lines, line)) {
        auto comment = line.find("//");
        if (comment != std::string::npos) {
            std::string c = line.substr(comment + 2);
            std::istringstream cs(c);
            std::string tag;
            cs >> tag;
            if (tag == "qkc.noise")
                statements.push_back("@noise" + c.substr(c.find(tag) + tag.size()));
            line = line.substr(0, comment);
        }
        std::size_t start = 0;
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (line[i] == ';') {
                statements.push_back(line.substr(start, i - start));
                start = i + 1;
            }
        }
        std::string rest = line.substr(start);
        if (rest.find_first_not_of(" \t\r") != std::string::npos)
            statements.push_back(rest);
    }

    auto trim = [](std::string s) {
        auto b = s.find_first_not_of(" \t\r");
        auto e = s.find_last_not_of(" \t\r");
        return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };

    // Caps and exception discipline for untrusted input: every statement
    // is processed under a catch-all that rewraps whatever the IR
    // constructors throw (std::out_of_range from an operand check, a
    // probability validation, a missing channel parameter) into a
    // QasmParseError naming the statement — the parser's only failure mode.
    const auto guardOpCount = [&limits](const Circuit& c) {
        if (c.size() >= limits.maxOperations)
            throw QasmParseError(
                "parseQasm: program exceeds the " +
                std::to_string(limits.maxOperations) + "-operation limit");
    };

    for (std::string stmtRaw : statements) {
        std::string stmt = trim(stmtRaw);
        if (stmt.empty())
            continue;
        try {

        if (stmt.rfind("@noise", 0) == 0) {
            std::istringstream ns(stmt.substr(6));
            std::string tag;
            ns >> tag;
            std::size_t numQubits = tag == "depol2q" ? 2 : 1;
            std::vector<std::size_t> qubits(numQubits);
            for (std::size_t& q : qubits)
                ns >> q;
            if (ns.fail())
                throw QasmParseError("parseQasm: bad noise qubits: " + stmt);
            std::vector<double> params;
            double p;
            while (ns >> p) {
                if (!std::isfinite(p))
                    throw QasmParseError(
                        "parseQasm: non-finite noise parameter: " + stmt);
                params.push_back(p);
            }
            if (!ns.eof())
                throw QasmParseError("parseQasm: bad noise parameters: " +
                                     stmt);
            if (!circuit)
                throw QasmParseError("parseQasm: noise before qreg");
            guardOpCount(*circuit);
            circuit->append(makeChannel(tag, qubits, params));
            continue;
        }
        if (stmt.rfind("OPENQASM", 0) == 0 || stmt.rfind("include", 0) == 0 ||
            stmt.rfind("creg", 0) == 0 || stmt.rfind("measure", 0) == 0 ||
            stmt.rfind("barrier", 0) == 0)
            continue;
        if (stmt.rfind("qreg", 0) == 0) {
            auto lb = stmt.find('[');
            auto rb = stmt.find(']');
            if (lb == std::string::npos || rb == std::string::npos ||
                rb < lb)
                throw QasmParseError("parseQasm: bad qreg: " + stmt);
            if (circuit)
                throw QasmParseError("parseQasm: multiple qregs");
            qregName = trim(stmt.substr(4, lb - 4));
            const std::size_t n = parseIndex(
                trim(stmt.substr(lb + 1, rb - lb - 1)), "qreg size");
            circuit = std::make_unique<Circuit>(n);
            continue;
        }

        // Gate application: name[(params)] operand[,operand...]
        if (!circuit)
            throw std::invalid_argument("parseQasm: gate before qreg");
        std::string name, argText, operandText;
        auto paren = stmt.find('(');
        auto space = stmt.find_first_of(" \t");
        if (paren != std::string::npos && paren < space) {
            name = trim(stmt.substr(0, paren));
            // Match the closing paren by depth (angles may nest parens).
            std::size_t close = std::string::npos;
            int depth = 0;
            for (std::size_t i = paren; i < stmt.size(); ++i) {
                if (stmt[i] == '(')
                    ++depth;
                else if (stmt[i] == ')' && --depth == 0) {
                    close = i;
                    break;
                }
            }
            if (close == std::string::npos)
                throw std::invalid_argument("parseQasm: missing ')'");
            argText = stmt.substr(paren + 1, close - paren - 1);
            operandText = trim(stmt.substr(close + 1));
        } else {
            if (space == std::string::npos)
                throw std::invalid_argument("parseQasm: bad statement: " + stmt);
            name = trim(stmt.substr(0, space));
            operandText = trim(stmt.substr(space + 1));
        }

        double theta = 0.0;
        if (!argText.empty())
            theta = AngleParser(argText, limits.maxAngleDepth).parse();

        std::vector<std::size_t> qubits;
        std::istringstream ops(operandText);
        std::string operand;
        while (std::getline(ops, operand, ',')) {
            operand = trim(operand);
            auto lb = operand.find('[');
            auto rb = operand.find(']');
            if (lb == std::string::npos || rb == std::string::npos ||
                rb < lb)
                throw QasmParseError(
                    "parseQasm: whole-register operations unsupported: " +
                    operand);
            std::string reg = trim(operand.substr(0, lb));
            if (reg != qregName)
                throw QasmParseError("parseQasm: unknown register " + reg);
            qubits.push_back(parseIndex(
                trim(operand.substr(lb + 1, rb - lb - 1)), "qubit index"));
        }

        static const std::map<std::string, GateKind> kKinds{
            {"id", GateKind::I},     {"x", GateKind::X},
            {"y", GateKind::Y},      {"z", GateKind::Z},
            {"h", GateKind::H},      {"s", GateKind::S},
            {"sdg", GateKind::Sdg},  {"t", GateKind::T},
            {"tdg", GateKind::Tdg},  {"rx", GateKind::Rx},
            {"ry", GateKind::Ry},    {"rz", GateKind::Rz},
            {"u1", GateKind::PhaseZ},{"p", GateKind::PhaseZ},
            {"cx", GateKind::CNOT},  {"CX", GateKind::CNOT},
            {"cz", GateKind::CZ},    {"swap", GateKind::SWAP},
            {"crz", GateKind::CRz},  {"cu1", GateKind::CPhase},
            {"cp", GateKind::CPhase},{"rzz", GateKind::ZZ},
            {"ccx", GateKind::CCX},  {"cswap", GateKind::CSWAP},
        };
        auto it = kKinds.find(name);
        if (it == kKinds.end())
            throw QasmParseError("parseQasm: unsupported gate " + name);
        guardOpCount(*circuit);
        circuit->append(Gate(it->second, qubits, theta));

        } catch (const QasmParseError&) {
            throw;
        } catch (const std::exception& e) {
            throw QasmParseError("parseQasm: invalid statement \"" + stmt +
                                 "\": " + e.what());
        }
    }

    if (!circuit)
        throw QasmParseError("parseQasm: no qreg declaration");
    return std::move(*circuit);
}

} // namespace qkc
