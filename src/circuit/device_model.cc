#include "circuit/device_model.h"

#include <cmath>
#include <stdexcept>

namespace qkc {

Circuit
DeviceModel::apply(const Circuit& circuit) const
{
    Circuit noisy(circuit.numQubits());
    for (const auto& op : circuit.operations()) {
        if (const NoiseChannel* ch = std::get_if<NoiseChannel>(&op)) {
            noisy.append(*ch);
            continue;
        }
        const Gate& g = std::get<Gate>(op);
        noisy.append(g);

        double duration;
        switch (g.arity()) {
          case 1: duration = singleQubitGateNs; break;
          case 2: duration = twoQubitGateNs; break;
          default: duration = threeQubitGateNs; break;
        }

        // Thermal relaxation on every operand qubit for the gate duration.
        for (std::size_t q : g.qubits()) {
            double T1 = t1Of(q);
            double T2 = t2Of(q);
            if (T2 > 2.0 * T1 + 1e-9)
                throw std::invalid_argument(
                    "DeviceModel: T2 > 2*T1 is unphysical");
            double gammaAmp = 1.0 - std::exp(-duration / T1);
            if (gammaAmp > 1e-12)
                noisy.append(NoiseChannel::amplitudeDamping(q, gammaAmp));
            // Pure dephasing rate beyond what T1 decay already causes.
            double invTphi = 1.0 / T2 - 0.5 / T1;
            if (invTphi > 1e-15) {
                double gammaPhi = 1.0 - std::exp(-2.0 * duration * invTphi);
                if (gammaPhi > 1e-12)
                    noisy.append(NoiseChannel::phaseDamping(q, gammaPhi));
            }
        }

        // Gate-error depolarizing: correlated across two-qubit operands.
        if (g.arity() == 2 && twoQubitDepolarizing > 0.0) {
            noisy.append(NoiseChannel::twoQubitDepolarizing(
                g.qubits()[0], g.qubits()[1], twoQubitDepolarizing));
        } else if (singleQubitDepolarizing > 0.0) {
            for (std::size_t q : g.qubits())
                noisy.append(
                    NoiseChannel::depolarizing(q, singleQubitDepolarizing));
        }
    }
    return noisy;
}

} // namespace qkc
