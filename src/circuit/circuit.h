#ifndef QKC_CIRCUIT_CIRCUIT_H
#define QKC_CIRCUIT_CIRCUIT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "circuit/gate.h"
#include "circuit/noise.h"

namespace qkc {

/** One time-ordered circuit element: a unitary gate or a noise channel. */
using Operation = std::variant<Gate, NoiseChannel>;

/**
 * A quantum circuit: a fixed number of qubits (all initialized to |0>) and a
 * time-ordered list of gates and noise channels. All qubits are measured in
 * the computational basis at the end; mid-circuit measurement is expressed
 * via the deferred-measurement principle (controlled operations), as the
 * paper does when it rewrites noise channels as spurious measurements
 * (Figure 2b).
 *
 * Bit-ordering convention (matches Cirq): qubit 0 is the MOST significant
 * bit of a basis-state index, so |q0 q1 ... q_{n-1}> has index
 * sum_i q_i << (n-1-i).
 */
class Circuit {
  public:
    explicit Circuit(std::size_t numQubits);

    std::size_t numQubits() const { return numQubits_; }
    const std::vector<Operation>& operations() const { return ops_; }
    std::size_t size() const { return ops_.size(); }

    /** Number of unitary gates (noise channels excluded). */
    std::size_t gateCount() const;

    /** Number of noise channels. */
    std::size_t noiseCount() const;

    void append(Gate gate);
    void append(NoiseChannel channel);

    /** Appends every operation of `other` (qubit counts must match). */
    void extend(const Circuit& other);

    // -- Fluent gate helpers -------------------------------------------------
    Circuit& i(std::size_t q) { return add(GateKind::I, {q}); }
    Circuit& x(std::size_t q) { return add(GateKind::X, {q}); }
    Circuit& y(std::size_t q) { return add(GateKind::Y, {q}); }
    Circuit& z(std::size_t q) { return add(GateKind::Z, {q}); }
    Circuit& h(std::size_t q) { return add(GateKind::H, {q}); }
    Circuit& s(std::size_t q) { return add(GateKind::S, {q}); }
    Circuit& sdg(std::size_t q) { return add(GateKind::Sdg, {q}); }
    Circuit& t(std::size_t q) { return add(GateKind::T, {q}); }
    Circuit& tdg(std::size_t q) { return add(GateKind::Tdg, {q}); }
    Circuit& rx(std::size_t q, double theta) { return add(GateKind::Rx, {q}, theta); }
    Circuit& ry(std::size_t q, double theta) { return add(GateKind::Ry, {q}, theta); }
    Circuit& rz(std::size_t q, double theta) { return add(GateKind::Rz, {q}, theta); }
    Circuit& phase(std::size_t q, double theta) { return add(GateKind::PhaseZ, {q}, theta); }
    Circuit& cnot(std::size_t c, std::size_t t) { return add(GateKind::CNOT, {c, t}); }
    Circuit& cz(std::size_t a, std::size_t b) { return add(GateKind::CZ, {a, b}); }
    Circuit& swap(std::size_t a, std::size_t b) { return add(GateKind::SWAP, {a, b}); }
    Circuit& crz(std::size_t c, std::size_t t, double theta) { return add(GateKind::CRz, {c, t}, theta); }
    Circuit& cphase(std::size_t c, std::size_t t, double theta) { return add(GateKind::CPhase, {c, t}, theta); }
    Circuit& zz(std::size_t a, std::size_t b, double theta) { return add(GateKind::ZZ, {a, b}, theta); }
    Circuit& ccx(std::size_t a, std::size_t b, std::size_t t) { return add(GateKind::CCX, {a, b, t}); }
    Circuit& ccz(std::size_t a, std::size_t b, std::size_t c) { return add(GateKind::CCZ, {a, b, c}); }
    Circuit& cswap(std::size_t c, std::size_t a, std::size_t b) { return add(GateKind::CSWAP, {c, a, b}); }

    /**
     * Inserts `channel` after every existing gate on that gate's qubits —
     * the paper's noisy-circuit construction ("0.5% symmetric depolarizing
     * after each gate"). Returns a new circuit; the original is untouched.
     */
    Circuit withNoiseAfterEachGate(NoiseKind kind, double p) const;

    /**
     * Returns mutable access to gate parameters: indices of parameterized
     * gates in operation order. Used with setGateParam to sweep variational
     * parameters on a fixed structure.
     */
    std::vector<std::size_t> parameterizedGateIndices() const;

    /** Updates the angle of the gate at operation index `opIndex`. */
    void setGateParam(std::size_t opIndex, double theta);

    /**
     * The inverse circuit: operations reversed with each gate inverted
     * (rotations negate their angle, S/T swap with their daggers, custom
     * gates use the adjoint). Throws if the circuit contains noise —
     * channels are not invertible.
     */
    Circuit inverse() const;

    /** Multi-line ASCII rendering for debugging and examples. */
    std::string toString() const;

  private:
    Circuit& add(GateKind kind, std::vector<std::size_t> qubits,
                 double param = 0.0);
    void checkQubits(const std::vector<std::size_t>& qubits) const;

    std::size_t numQubits_;
    std::vector<Operation> ops_;
};

/** Index of basis state |q0 q1 ... q_{n-1}> given per-qubit bits. */
std::uint64_t basisIndex(const std::vector<int>& bits);

/** Per-qubit bits of a basis-state index (qubit 0 = most significant). */
std::vector<int> basisBits(std::uint64_t index, std::size_t numQubits);

/** Formats a basis index as a ket string, e.g. |0110>. */
std::string basisKet(std::uint64_t index, std::size_t numQubits);

} // namespace qkc

#endif // QKC_CIRCUIT_CIRCUIT_H
