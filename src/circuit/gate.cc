#include "circuit/gate.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qkc {

namespace {

constexpr Complex kI{0.0, 1.0};

Matrix
rx(double theta)
{
    double c = std::cos(theta / 2.0);
    double s = std::sin(theta / 2.0);
    return Matrix{{c, -kI * s}, {-kI * s, c}};
}

Matrix
ry(double theta)
{
    double c = std::cos(theta / 2.0);
    double s = std::sin(theta / 2.0);
    return Matrix{{c, -s}, {s, c}};
}

Matrix
rz(double theta)
{
    Complex em = std::exp(-kI * (theta / 2.0));
    Complex ep = std::exp(kI * (theta / 2.0));
    return Matrix{{em, 0.0}, {0.0, ep}};
}

/** Embeds a single-qubit unitary as a controlled two-qubit unitary. */
Matrix
controlled(const Matrix& u)
{
    Matrix m = Matrix::identity(4);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            m(2 + i, 2 + j) = u(i, j);
    return m;
}

} // namespace

Gate::Gate(GateKind kind, std::vector<std::size_t> qubits, double param)
    : kind_(kind), qubits_(std::move(qubits)), param_(param)
{
    std::size_t expected;
    switch (kind_) {
      case GateKind::CNOT:
      case GateKind::CZ:
      case GateKind::SWAP:
      case GateKind::CRz:
      case GateKind::CPhase:
      case GateKind::ZZ:
      case GateKind::Custom2Q:
        expected = 2;
        break;
      case GateKind::CCX:
      case GateKind::CCZ:
      case GateKind::CSWAP:
        expected = 3;
        break;
      default:
        expected = 1;
        break;
    }
    if (qubits_.size() != expected)
        throw std::invalid_argument("Gate: wrong qubit count for kind");
    for (std::size_t i = 0; i < qubits_.size(); ++i)
        for (std::size_t j = i + 1; j < qubits_.size(); ++j)
            if (qubits_[i] == qubits_[j])
                throw std::invalid_argument("Gate: duplicate qubit operand");
}

Gate
Gate::custom(std::vector<std::size_t> qubits, Matrix unitary, std::string label)
{
    if (!unitary.isUnitary(1e-6))
        throw std::invalid_argument("Gate::custom: matrix is not unitary");
    GateKind kind;
    if (qubits.size() == 1 && unitary.rows() == 2) {
        kind = GateKind::Custom1Q;
    } else if (qubits.size() == 2 && unitary.rows() == 4) {
        kind = GateKind::Custom2Q;
    } else {
        throw std::invalid_argument("Gate::custom: size mismatch");
    }
    Gate g(kind, std::move(qubits));
    g.custom_ = std::move(unitary);
    g.label_ = std::move(label);
    return g;
}

bool
Gate::isParameterized() const
{
    switch (kind_) {
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
      case GateKind::PhaseZ:
      case GateKind::CRz:
      case GateKind::CPhase:
      case GateKind::ZZ:
        return true;
      default:
        return false;
    }
}

Matrix
Gate::unitary() const
{
    const double invSqrt2 = 1.0 / std::sqrt(2.0);
    switch (kind_) {
      case GateKind::I:
        return Matrix::identity(2);
      case GateKind::X:
        return Matrix{{0.0, 1.0}, {1.0, 0.0}};
      case GateKind::Y:
        return Matrix{{0.0, -kI}, {kI, 0.0}};
      case GateKind::Z:
        return Matrix{{1.0, 0.0}, {0.0, -1.0}};
      case GateKind::H:
        return Matrix{{invSqrt2, invSqrt2}, {invSqrt2, -invSqrt2}};
      case GateKind::S:
        return Matrix{{1.0, 0.0}, {0.0, kI}};
      case GateKind::Sdg:
        return Matrix{{1.0, 0.0}, {0.0, -kI}};
      case GateKind::T:
        return Matrix{{1.0, 0.0}, {0.0, std::exp(kI * (M_PI / 4.0))}};
      case GateKind::Tdg:
        return Matrix{{1.0, 0.0}, {0.0, std::exp(-kI * (M_PI / 4.0))}};
      case GateKind::Rx:
        return rx(param_);
      case GateKind::Ry:
        return ry(param_);
      case GateKind::Rz:
        return rz(param_);
      case GateKind::PhaseZ:
        return Matrix{{1.0, 0.0}, {0.0, std::exp(kI * param_)}};
      case GateKind::CNOT:
        return Matrix{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}};
      case GateKind::CZ:
        return Matrix{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, -1}};
      case GateKind::SWAP:
        return Matrix{{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
      case GateKind::CRz:
        return controlled(rz(param_));
      case GateKind::CPhase:
        return controlled(Matrix{{1.0, 0.0}, {0.0, std::exp(kI * param_)}});
      case GateKind::ZZ: {
        Complex em = std::exp(-kI * (param_ / 2.0));
        Complex ep = std::exp(kI * (param_ / 2.0));
        return Matrix{{em, 0, 0, 0}, {0, ep, 0, 0}, {0, 0, ep, 0}, {0, 0, 0, em}};
      }
      case GateKind::CCX: {
        Matrix m = Matrix::identity(8);
        m(6, 6) = 0.0;
        m(6, 7) = 1.0;
        m(7, 7) = 0.0;
        m(7, 6) = 1.0;
        return m;
      }
      case GateKind::CCZ: {
        Matrix m = Matrix::identity(8);
        m(7, 7) = -1.0;
        return m;
      }
      case GateKind::CSWAP: {
        Matrix m = Matrix::identity(8);
        m(5, 5) = 0.0;
        m(5, 6) = 1.0;
        m(6, 6) = 0.0;
        m(6, 5) = 1.0;
        return m;
      }
      case GateKind::Custom1Q:
      case GateKind::Custom2Q:
        return custom_;
    }
    throw std::logic_error("Gate::unitary: unknown kind");
}

std::string
Gate::name() const
{
    auto withParam = [&](const char* base) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s(%.3f)", base, param_);
        return std::string(buf);
    };
    switch (kind_) {
      case GateKind::I: return "I";
      case GateKind::X: return "X";
      case GateKind::Y: return "Y";
      case GateKind::Z: return "Z";
      case GateKind::H: return "H";
      case GateKind::S: return "S";
      case GateKind::Sdg: return "Sdg";
      case GateKind::T: return "T";
      case GateKind::Tdg: return "Tdg";
      case GateKind::Rx: return withParam("Rx");
      case GateKind::Ry: return withParam("Ry");
      case GateKind::Rz: return withParam("Rz");
      case GateKind::PhaseZ: return withParam("P");
      case GateKind::CNOT: return "CNOT";
      case GateKind::CZ: return "CZ";
      case GateKind::SWAP: return "SWAP";
      case GateKind::CRz: return withParam("CRz");
      case GateKind::CPhase: return withParam("CP");
      case GateKind::ZZ: return withParam("ZZ");
      case GateKind::CCX: return "CCX";
      case GateKind::CCZ: return "CCZ";
      case GateKind::CSWAP: return "CSWAP";
      case GateKind::Custom1Q:
      case GateKind::Custom2Q:
        return label_.empty() ? "U" : label_;
    }
    return "?";
}

} // namespace qkc
