#ifndef QKC_DENSITYMATRIX_DENSITY_MATRIX_H
#define QKC_DENSITYMATRIX_DENSITY_MATRIX_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qkc {

/**
 * Dense 2^n x 2^n density matrix with local-operator application kernels.
 *
 * This is the representation behind the Cirq density-matrix baseline the
 * paper benchmarks in Figure 9: quadratic storage in the state-vector size
 * and matrix-matrix (rather than matrix-vector) update cost, which is why
 * knowledge compilation breaks even at fewer qubits in the noisy case.
 *
 * rho is stored row-major; index convention matches Circuit (qubit 0 is the
 * most significant bit of a row/column index).
 */
class DensityMatrix {
  public:
    /** Initializes |0...0><0...0|. */
    explicit DensityMatrix(std::size_t numQubits);

    std::size_t numQubits() const { return numQubits_; }
    std::size_t dimension() const { return dim_; }

    Complex& at(std::uint64_t row, std::uint64_t col)
    {
        return data_[row * dim_ + col];
    }
    const Complex& at(std::uint64_t row, std::uint64_t col) const
    {
        return data_[row * dim_ + col];
    }

    /** rho <- U rho U^dagger for a single-qubit unitary on `qubit`. */
    void applyUnitarySingle(const Matrix& u, std::size_t qubit);

    /** rho <- U rho U^dagger for a two-qubit unitary (q0 high, q1 low). */
    void applyUnitaryTwo(const Matrix& u, std::size_t q0, std::size_t q1);

    /** rho <- U rho U^dagger for a three-qubit unitary. */
    void applyUnitaryThree(const Matrix& u, std::size_t q0, std::size_t q1,
                           std::size_t q2);

    /** rho <- sum_k E_k rho E_k^dagger for a single-qubit channel. */
    void applyChannelSingle(const std::vector<Matrix>& kraus, std::size_t qubit);

    /** rho <- sum_k E_k rho E_k^dagger for a one- or two-qubit channel. */
    void applyChannel(const std::vector<Matrix>& kraus,
                      const std::vector<std::size_t>& qubits);

    /** Tr(rho). */
    Complex trace() const;

    /** Measurement probabilities: the (real parts of the) diagonal. */
    std::vector<double> diagonalProbabilities() const;

    /** Extracts the full matrix (tests / small instances only). */
    Matrix toMatrix() const;

  private:
    /**
     * Applies a k-qubit operator M to the row index space:
     * rho <- M rho (columns untouched), with `bits` the global bit positions
     * (MSB first) of the operated qubits.
     */
    void applyLeft(const Matrix& m, const std::vector<std::size_t>& bits);

    /** rho <- rho M^dagger on the column index space. */
    void applyRightAdjoint(const Matrix& m, const std::vector<std::size_t>& bits);

    std::vector<std::size_t> bitPositions(const std::vector<std::size_t>& qubits) const;

    std::size_t numQubits_;
    std::size_t dim_;
    std::vector<Complex> data_;
};

} // namespace qkc

#endif // QKC_DENSITYMATRIX_DENSITY_MATRIX_H
