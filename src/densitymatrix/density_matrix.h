#ifndef QKC_DENSITYMATRIX_DENSITY_MATRIX_H
#define QKC_DENSITYMATRIX_DENSITY_MATRIX_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/gate_kernels.h"
#include "exec/thread_pool.h"
#include "linalg/aligned.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qkc {

/**
 * Dense 2^n x 2^n density matrix with local-operator application kernels.
 *
 * This is the representation behind the Cirq density-matrix baseline the
 * paper benchmarks in Figure 9: quadratic storage in the state-vector size
 * and matrix-matrix (rather than matrix-vector) update cost, which is why
 * knowledge compilation breaks even at fewer qubits in the noisy case.
 *
 * Superoperator application reuses the exec gate kernels on the flattened
 * index space: rho is stored row-major, so flat(r, c) = r * 2^n + c and the
 * row/column index spaces are just the high/low n bits of a 2n-bit index.
 * U rho = kernel(U) on the high bits; rho U^dagger = kernel(conj(U)) on the
 * low bits. Both sweeps inherit the kernel specialization (a CZ left-apply
 * is a masked sign flip, not a 4x4 multiply) and the shared-pool
 * parallelism, with deterministic chunking.
 *
 * rho index convention matches Circuit (qubit 0 is the most significant bit
 * of a row/column index).
 */
class DensityMatrix {
  public:
    /**
     * Kernels for one conjugation rho <- M rho M^dagger: `left` acts on the
     * row bits (flat positions + n), `right` is conj(M) on the column bits.
     * Compiled once per circuit structure by the dm execution plan (see
     * densitymatrix_simulator.h) and refreshed in place across parameter
     * rebinds.
     */
    struct SuperKernel {
        GateKernel left;
        GateKernel right;
    };

    /** Initializes |0...0><0...0|. */
    explicit DensityMatrix(std::size_t numQubits);

    std::size_t numQubits() const { return numQubits_; }
    std::size_t dimension() const { return dim_; }

    /** Threading knobs for every superoperator sweep on this matrix. */
    const ExecPolicy& execPolicy() const { return policy_; }
    void setExecPolicy(const ExecPolicy& policy) { policy_ = policy; }

    Complex& at(std::uint64_t row, std::uint64_t col)
    {
        return data_[row * dim_ + col];
    }
    const Complex& at(std::uint64_t row, std::uint64_t col) const
    {
        return data_[row * dim_ + col];
    }

    /** rho <- U rho U^dagger for a single-qubit unitary on `qubit`. */
    void applyUnitarySingle(const Matrix& u, std::size_t qubit);

    /** rho <- U rho U^dagger for a two-qubit unitary (q0 high, q1 low). */
    void applyUnitaryTwo(const Matrix& u, std::size_t q0, std::size_t q1);

    /** rho <- U rho U^dagger for a three-qubit unitary. */
    void applyUnitaryThree(const Matrix& u, std::size_t q0, std::size_t q1,
                           std::size_t q2);

    /** rho <- U rho U^dagger for a 1-3 qubit unitary. */
    void applyUnitary(const Matrix& u, const std::vector<std::size_t>& qubits);

    /** rho <- sum_k E_k rho E_k^dagger for a single-qubit channel. */
    void applyChannelSingle(const std::vector<Matrix>& kraus, std::size_t qubit);

    /** rho <- sum_k E_k rho E_k^dagger for a one- or two-qubit channel. */
    void applyChannel(const std::vector<Matrix>& kraus,
                      const std::vector<std::size_t>& qubits);

    /**
     * Compiles the left/right kernel pair for M acting on `qubits` of an
     * n-qubit density matrix — the classification work applyUnitary pays
     * per call, exposed so an execution plan can pay it once per structure.
     */
    static SuperKernel compileSuperKernel(const Matrix& m,
                                          const std::vector<std::size_t>& qubits,
                                          std::size_t numQubits);

    /**
     * Refreshes a compiled pair for a new matrix on the same qubits without
     * re-classification (the variational fast path; see tryRefreshKernel).
     * Returns false — pair unmodified on the left side only at worst — when
     * the new matrix no longer fits the stored kernel classes.
     */
    static bool tryRefreshSuperKernel(SuperKernel& k, const Matrix& m);

    /** rho <- M rho M^dagger via a precompiled pair. */
    void applySuper(const SuperKernel& k);

    /** rho <- sum_k E_k rho E_k^dagger via precompiled pairs. */
    void applyChannelSuper(const std::vector<SuperKernel>& kraus);

    /** Tr(rho). */
    Complex trace() const;

    /** Measurement probabilities: the (real parts of the) diagonal. */
    std::vector<double> diagonalProbabilities() const;

    /** Extracts the full matrix (tests / small instances only). */
    Matrix toMatrix() const;

  private:
    std::size_t numQubits_;
    std::size_t dim_;
    AmpVector data_; ///< row-major rho, 64-byte aligned like every amp buffer
    ExecPolicy policy_;
};

} // namespace qkc

#endif // QKC_DENSITYMATRIX_DENSITY_MATRIX_H
