#ifndef QKC_DENSITYMATRIX_DENSITYMATRIX_SIMULATOR_H
#define QKC_DENSITYMATRIX_DENSITYMATRIX_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "circuit/simulation_path.h"
#include "densitymatrix/density_matrix.h"
#include "exec/thread_pool.h"
#include "util/rng.h"

namespace qkc {

/**
 * One circuit operation lowered for superoperator execution: a left/right
 * kernel pair per gate, or one pair per Kraus operator for a channel.
 * `opIndex` refers into the owning plan's (possibly fused) circuit.
 */
struct DmPlannedOp {
    std::size_t opIndex = 0;
    bool isChannel = false;
    DensityMatrix::SuperKernel gate;               ///< valid when !isChannel
    std::vector<DensityMatrix::SuperKernel> kraus; ///< valid when isChannel
};

/**
 * A circuit prepared for repeated density-matrix execution — the dm
 * counterpart of exec's ExecutionPlan: fusion has run (if the policy asks
 * for it) and every gate and Kraus matrix has been classified into its
 * left/right superoperator kernel pair exactly once. A session holds one of
 * these per circuit structure and refreshes it across parameter rebinds, so
 * its planReuses metadata corresponds to classification work actually saved.
 */
struct DmExecutionPlan {
    std::size_t numQubits = 0;
    Circuit circuit{1};       ///< the (possibly fused) circuit kernels map to
    std::vector<DmPlannedOp> ops;
    FusionStats fusion;       ///< zeros when fusion was disabled
    bool fusionEnabled = false;
    FusionRecipe recipe;      ///< valid when fusionEnabled

    // Simulation-path scheduling (the dm mirror of ExecutionPlan's fields).
    PathOptions pathOptions;
    SimulationPath path;
    std::vector<bool> frozenGroup; ///< per recipe group; path-scheduled only
    std::vector<bool> frozenOp;    ///< per planned op; path-scheduled only
    std::uint64_t sourceHash = 0;  ///< structureHash of the source circuit
    std::size_t mmProducts = 0;    ///< MxM tree products from the last plan/rebind
    std::size_t cachedSubtrees = 0; ///< frozen subtrees reused by the last rebind

    bool pathScheduled() const { return pathOptions.active(); }
};

/** Builds the superoperator plan for `circuit` under `policy`. */
DmExecutionPlan planCircuitDm(const Circuit& circuit, const ExecPolicy& policy);

/**
 * Path-scheduling overload, the dm counterpart of exec's three-argument
 * planCircuit: an inactive planner (Auto/Linear) produces the two-argument
 * plan bit-for-bit, annotated with its linear chain; an active planner runs
 * fusion with channel barriers (superoperator products never cross a path
 * node boundary) and evaluates each group's MxM products as independent
 * tree tasks on the pool, in per-group slots read back in group order — the
 * plan is identical at every thread count. Frozen groups are skipped on
 * rebind and reported through `cachedSubtrees`.
 */
DmExecutionPlan planCircuitDm(const Circuit& circuit, const ExecPolicy& policy,
                              const PathOptions& pathOptions);

/**
 * Rebinds `plan` to a same-structure circuit (the variational fast path):
 * replays the recorded fusion recipe on the new gate values and refreshes
 * every kernel pair in place — no greedy fusion pass, no re-classification.
 * Returns false when the structure differs, a fused product crossed the
 * identity boundary, or a parameter change invalidated a stored kernel
 * class; the plan may then be partially refreshed and the caller must
 * re-plan before executing it.
 */
bool tryRebindDmPlan(DmExecutionPlan& plan, const Circuit& circuit);

/**
 * Density matrix circuit simulator — the stand-in for the Cirq
 * density-matrix baseline in the paper's noisy-circuit evaluation
 * (Figure 9). Handles arbitrary mixtures and channels exactly.
 *
 * Gate fusion and the shared-thread-pool kernels apply here exactly as in
 * the state-vector engine: the ExecPolicy is forwarded to DensityMatrix,
 * whose superoperator sweeps run on the flattened 2n-bit index space.
 */
class DensityMatrixSimulator {
  public:
    DensityMatrixSimulator() = default;
    explicit DensityMatrixSimulator(const ExecPolicy& policy)
        : policy_(policy)
    {
    }

    const ExecPolicy& execPolicy() const { return policy_; }
    void setExecPolicy(const ExecPolicy& policy) { policy_ = policy; }

    /** Evolves |0..0><0..0| through all gates and channels. */
    DensityMatrix simulate(const Circuit& circuit) const;

    /**
     * Evolves |0..0><0..0| through a pre-built plan. Backend sessions plan
     * a circuit structure once and re-execute it across parameter binds
     * without re-paying fusion or kernel classification.
     */
    DensityMatrix simulatePlanned(const DmExecutionPlan& plan) const;

    /** Exact outcome distribution: diagonal of the final density matrix. */
    std::vector<double> distribution(const Circuit& circuit) const;

    /**
     * Draws measurement outcomes. The density matrix is computed once and
     * outcomes are drawn from its diagonal.
     */
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) const;

  private:
    ExecPolicy policy_;
};

} // namespace qkc

#endif // QKC_DENSITYMATRIX_DENSITYMATRIX_SIMULATOR_H
