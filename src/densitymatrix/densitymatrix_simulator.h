#ifndef QKC_DENSITYMATRIX_DENSITYMATRIX_SIMULATOR_H
#define QKC_DENSITYMATRIX_DENSITYMATRIX_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "densitymatrix/density_matrix.h"
#include "exec/thread_pool.h"
#include "util/rng.h"

namespace qkc {

/**
 * Density matrix circuit simulator — the stand-in for the Cirq
 * density-matrix baseline in the paper's noisy-circuit evaluation
 * (Figure 9). Handles arbitrary mixtures and channels exactly.
 *
 * Gate fusion and the shared-thread-pool kernels apply here exactly as in
 * the state-vector engine: the ExecPolicy is forwarded to DensityMatrix,
 * whose superoperator sweeps run on the flattened 2n-bit index space.
 */
class DensityMatrixSimulator {
  public:
    DensityMatrixSimulator() = default;
    explicit DensityMatrixSimulator(const ExecPolicy& policy)
        : policy_(policy)
    {
    }

    const ExecPolicy& execPolicy() const { return policy_; }
    void setExecPolicy(const ExecPolicy& policy) { policy_ = policy; }

    /** Evolves |0..0><0..0| through all gates and channels. */
    DensityMatrix simulate(const Circuit& circuit) const;

    /** Exact outcome distribution: diagonal of the final density matrix. */
    std::vector<double> distribution(const Circuit& circuit) const;

    /**
     * Draws measurement outcomes. The density matrix is computed once and
     * outcomes are drawn from its diagonal.
     */
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) const;

  private:
    ExecPolicy policy_;
};

} // namespace qkc

#endif // QKC_DENSITYMATRIX_DENSITYMATRIX_SIMULATOR_H
