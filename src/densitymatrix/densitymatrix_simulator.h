#ifndef QKC_DENSITYMATRIX_DENSITYMATRIX_SIMULATOR_H
#define QKC_DENSITYMATRIX_DENSITYMATRIX_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "densitymatrix/density_matrix.h"
#include "util/rng.h"

namespace qkc {

/**
 * Density matrix circuit simulator — the stand-in for the Cirq
 * density-matrix baseline in the paper's noisy-circuit evaluation
 * (Figure 9). Handles arbitrary mixtures and channels exactly.
 */
class DensityMatrixSimulator {
  public:
    /** Evolves |0..0><0..0| through all gates and channels. */
    DensityMatrix simulate(const Circuit& circuit) const;

    /** Exact outcome distribution: diagonal of the final density matrix. */
    std::vector<double> distribution(const Circuit& circuit) const;

    /**
     * Draws measurement outcomes. The density matrix is computed once and
     * outcomes are drawn from its diagonal.
     */
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) const;
};

} // namespace qkc

#endif // QKC_DENSITYMATRIX_DENSITYMATRIX_SIMULATOR_H
