#include "densitymatrix/density_matrix.h"

#include <cassert>
#include <stdexcept>

namespace qkc {

namespace {

std::size_t
checkedDimension(std::size_t numQubits)
{
    if (numQubits == 0 || numQubits > 14)
        throw std::invalid_argument("DensityMatrix: qubit count out of range");
    return std::size_t{1} << numQubits;
}

Matrix
conjugated(const Matrix& m)
{
    Matrix c(m.rows(), m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t col = 0; col < m.cols(); ++col)
            c(r, col) = std::conj(m(r, col));
    return c;
}

} // namespace

DensityMatrix::DensityMatrix(std::size_t numQubits)
    : numQubits_(numQubits), dim_(checkedDimension(numQubits)),
      data_(dim_ * dim_)
{
    data_[0] = 1.0;
}

DensityMatrix::SuperKernel
DensityMatrix::compileSuperKernel(const Matrix& m,
                                  const std::vector<std::size_t>& qubits,
                                  std::size_t numQubits)
{
    std::vector<std::uint32_t> rowBits, colBits;
    rowBits.reserve(qubits.size());
    colBits.reserve(qubits.size());
    for (std::size_t q : qubits) {
        assert(q < numQubits);
        const std::uint32_t s =
            static_cast<std::uint32_t>(numQubits - 1 - q);
        rowBits.push_back(s + static_cast<std::uint32_t>(numQubits));
        colBits.push_back(s);
    }
    // (rho M^dagger)(., c) = sum_k rho(., k) conj(M(c, k)): the column-space
    // operator is the elementwise conjugate of M (no transpose).
    return SuperKernel{compileKernel(m, rowBits),
                       compileKernel(conjugated(m), colBits)};
}

bool
DensityMatrix::tryRefreshSuperKernel(SuperKernel& k, const Matrix& m)
{
    return tryRefreshKernel(k.left, m) &&
           tryRefreshKernel(k.right, conjugated(m));
}

void
DensityMatrix::applySuper(const SuperKernel& k)
{
    const std::uint64_t flatDim = static_cast<std::uint64_t>(dim_) * dim_;
    applyKernel(k.left, data_.data(), flatDim, policy_);
    applyKernel(k.right, data_.data(), flatDim, policy_);
}

void
DensityMatrix::applyUnitary(const Matrix& u,
                            const std::vector<std::size_t>& qubits)
{
    applySuper(compileSuperKernel(u, qubits, numQubits_));
}

void
DensityMatrix::applyUnitarySingle(const Matrix& u, std::size_t qubit)
{
    applyUnitary(u, {qubit});
}

void
DensityMatrix::applyUnitaryTwo(const Matrix& u, std::size_t q0, std::size_t q1)
{
    applyUnitary(u, {q0, q1});
}

void
DensityMatrix::applyUnitaryThree(const Matrix& u, std::size_t q0,
                                 std::size_t q1, std::size_t q2)
{
    applyUnitary(u, {q0, q1, q2});
}

void
DensityMatrix::applyChannelSingle(const std::vector<Matrix>& kraus,
                                  std::size_t qubit)
{
    applyChannel(kraus, {qubit});
}

void
DensityMatrix::applyChannel(const std::vector<Matrix>& kraus,
                            const std::vector<std::size_t>& qubits)
{
    std::vector<SuperKernel> kernels;
    kernels.reserve(kraus.size());
    for (const Matrix& e : kraus)
        kernels.push_back(compileSuperKernel(e, qubits, numQubits_));
    applyChannelSuper(kernels);
}

void
DensityMatrix::applyChannelSuper(const std::vector<SuperKernel>& kraus)
{
    const std::uint64_t flatDim = static_cast<std::uint64_t>(dim_) * dim_;
    AmpVector acc(data_.size(), Complex{});
    const AmpVector original = data_;
    for (const SuperKernel& k : kraus) {
        applySuper(k);
        parallelFor(policy_, flatDim,
                    [&](std::uint64_t b, std::uint64_t end) {
            for (std::uint64_t i = b; i < end; ++i)
                acc[i] += data_[i];
        });
        if (&k != &kraus.back()) {
            parallelFor(policy_, flatDim,
                        [&](std::uint64_t b, std::uint64_t end) {
                for (std::uint64_t i = b; i < end; ++i)
                    data_[i] = original[i];
            });
        }
    }
    data_ = std::move(acc);
}

Complex
DensityMatrix::trace() const
{
    Complex t{};
    for (std::uint64_t i = 0; i < dim_; ++i)
        t += at(i, i);
    return t;
}

std::vector<double>
DensityMatrix::diagonalProbabilities() const
{
    std::vector<double> probs(dim_);
    for (std::uint64_t i = 0; i < dim_; ++i)
        probs[i] = at(i, i).real();
    return probs;
}

Matrix
DensityMatrix::toMatrix() const
{
    Matrix m(dim_, dim_);
    for (std::uint64_t r = 0; r < dim_; ++r)
        for (std::uint64_t c = 0; c < dim_; ++c)
            m(r, c) = at(r, c);
    return m;
}

} // namespace qkc
