#include "densitymatrix/density_matrix.h"

#include <cassert>
#include <stdexcept>

namespace qkc {

namespace {

std::size_t
checkedDimension(std::size_t numQubits)
{
    if (numQubits == 0 || numQubits > 14)
        throw std::invalid_argument("DensityMatrix: qubit count out of range");
    return std::size_t{1} << numQubits;
}

} // namespace

DensityMatrix::DensityMatrix(std::size_t numQubits)
    : numQubits_(numQubits), dim_(checkedDimension(numQubits)),
      data_(dim_ * dim_)
{
    data_[0] = 1.0;
}

std::vector<std::size_t>
DensityMatrix::bitPositions(const std::vector<std::size_t>& qubits) const
{
    std::vector<std::size_t> shifts;
    shifts.reserve(qubits.size());
    for (std::size_t q : qubits) {
        assert(q < numQubits_);
        shifts.push_back(numQubits_ - 1 - q);
    }
    return shifts;
}

void
DensityMatrix::applyLeft(const Matrix& m, const std::vector<std::size_t>& bits)
{
    const std::size_t a = bits.size();
    const std::size_t k = std::size_t{1} << a;
    assert(m.rows() == k && m.cols() == k);

    std::uint64_t mask = 0;
    for (std::size_t s : bits)
        mask |= std::uint64_t{1} << s;

    std::vector<Complex> in(k), out(k);
    for (std::uint64_t base = 0; base < dim_; ++base) {
        if (base & mask)
            continue;
        std::vector<std::uint64_t> rows(k);
        for (std::size_t l = 0; l < k; ++l) {
            std::uint64_t r = base;
            for (std::size_t j = 0; j < a; ++j) {
                if ((l >> (a - 1 - j)) & 1)
                    r |= std::uint64_t{1} << bits[j];
            }
            rows[l] = r;
        }
        for (std::uint64_t col = 0; col < dim_; ++col) {
            for (std::size_t l = 0; l < k; ++l)
                in[l] = at(rows[l], col);
            for (std::size_t r = 0; r < k; ++r) {
                out[r] = Complex{};
                for (std::size_t c = 0; c < k; ++c)
                    out[r] += m(r, c) * in[c];
            }
            for (std::size_t l = 0; l < k; ++l)
                at(rows[l], col) = out[l];
        }
    }
}

void
DensityMatrix::applyRightAdjoint(const Matrix& m,
                                 const std::vector<std::size_t>& bits)
{
    const std::size_t a = bits.size();
    const std::size_t k = std::size_t{1} << a;
    assert(m.rows() == k && m.cols() == k);

    std::uint64_t mask = 0;
    for (std::size_t s : bits)
        mask |= std::uint64_t{1} << s;

    std::vector<Complex> in(k), out(k);
    for (std::uint64_t base = 0; base < dim_; ++base) {
        if (base & mask)
            continue;
        std::vector<std::uint64_t> cols(k);
        for (std::size_t l = 0; l < k; ++l) {
            std::uint64_t c = base;
            for (std::size_t j = 0; j < a; ++j) {
                if ((l >> (a - 1 - j)) & 1)
                    c |= std::uint64_t{1} << bits[j];
            }
            cols[l] = c;
        }
        for (std::uint64_t row = 0; row < dim_; ++row) {
            for (std::size_t l = 0; l < k; ++l)
                in[l] = at(row, cols[l]);
            // (rho M^dagger)[., c] = sum_k rho[., k] conj(M[c][k])
            for (std::size_t c = 0; c < k; ++c) {
                out[c] = Complex{};
                for (std::size_t kk = 0; kk < k; ++kk)
                    out[c] += in[kk] * std::conj(m(c, kk));
            }
            for (std::size_t l = 0; l < k; ++l)
                at(row, cols[l]) = out[l];
        }
    }
}

void
DensityMatrix::applyUnitarySingle(const Matrix& u, std::size_t qubit)
{
    auto bits = bitPositions({qubit});
    applyLeft(u, bits);
    applyRightAdjoint(u, bits);
}

void
DensityMatrix::applyUnitaryTwo(const Matrix& u, std::size_t q0, std::size_t q1)
{
    auto bits = bitPositions({q0, q1});
    applyLeft(u, bits);
    applyRightAdjoint(u, bits);
}

void
DensityMatrix::applyUnitaryThree(const Matrix& u, std::size_t q0,
                                 std::size_t q1, std::size_t q2)
{
    auto bits = bitPositions({q0, q1, q2});
    applyLeft(u, bits);
    applyRightAdjoint(u, bits);
}

void
DensityMatrix::applyChannelSingle(const std::vector<Matrix>& kraus,
                                  std::size_t qubit)
{
    applyChannel(kraus, {qubit});
}

void
DensityMatrix::applyChannel(const std::vector<Matrix>& kraus,
                            const std::vector<std::size_t>& qubits)
{
    auto bits = bitPositions(qubits);
    std::vector<Complex> acc(data_.size(), Complex{});
    const std::vector<Complex> original = data_;
    for (const Matrix& e : kraus) {
        data_ = original;
        applyLeft(e, bits);
        applyRightAdjoint(e, bits);
        for (std::size_t i = 0; i < data_.size(); ++i)
            acc[i] += data_[i];
    }
    data_ = std::move(acc);
}

Complex
DensityMatrix::trace() const
{
    Complex t{};
    for (std::uint64_t i = 0; i < dim_; ++i)
        t += at(i, i);
    return t;
}

std::vector<double>
DensityMatrix::diagonalProbabilities() const
{
    std::vector<double> probs(dim_);
    for (std::uint64_t i = 0; i < dim_; ++i)
        probs[i] = at(i, i).real();
    return probs;
}

Matrix
DensityMatrix::toMatrix() const
{
    Matrix m(dim_, dim_);
    for (std::uint64_t r = 0; r < dim_; ++r)
        for (std::uint64_t c = 0; c < dim_; ++c)
            m(r, c) = at(r, c);
    return m;
}

} // namespace qkc
