#include "densitymatrix/densitymatrix_simulator.h"

#include "obs/trace.h"

#include <stdexcept>

#include "circuit/fusion.h"
#include "exec/execution_plan.h"
#include "statevector/statevector_simulator.h"

namespace qkc {

DmExecutionPlan
planCircuitDm(const Circuit& circuit, const ExecPolicy& policy)
{
    QKC_SPAN("exec.planDm");
    DmExecutionPlan plan;
    plan.numQubits = circuit.numQubits();
    plan.fusionEnabled = policy.fuseGates;
    if (policy.fuseGates) {
        plan.recipe = planFusion(circuit, {});
        plan.circuit = *materializeFusion(plan.recipe, circuit, &plan.fusion);
    } else {
        plan.circuit = circuit;
    }

    const auto& ops = plan.circuit.operations();
    plan.ops.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        DmPlannedOp p;
        p.opIndex = i;
        if (const Gate* g = std::get_if<Gate>(&ops[i])) {
            p.gate = DensityMatrix::compileSuperKernel(g->unitary(),
                                                       g->qubits(),
                                                       plan.numQubits);
        } else {
            const auto& ch = std::get<NoiseChannel>(ops[i]);
            p.isChannel = true;
            p.kraus.reserve(ch.krausOperators().size());
            for (const Matrix& e : ch.krausOperators())
                p.kraus.push_back(DensityMatrix::compileSuperKernel(
                    e, ch.qubits(), plan.numQubits));
        }
        plan.ops.push_back(std::move(p));
    }
    return plan;
}

bool
tryRebindDmPlan(DmExecutionPlan& plan, const Circuit& circuit)
{
    // On any failure the caller re-plans from scratch, so a partially
    // refreshed plan is never executed.
    if (circuit.numQubits() != plan.numQubits)
        return false;

    if (plan.fusionEnabled) {
        // materializeFusion validates indices, kinds and wires itself.
        auto fused = materializeFusion(plan.recipe, circuit, &plan.fusion);
        if (!fused || fused->size() != plan.circuit.size())
            return false;
        plan.circuit = std::move(*fused);
    } else {
        if (!sameStructure(plan.circuit, circuit))
            return false;
        plan.circuit = circuit;
    }

    for (DmPlannedOp& op : plan.ops) {
        const Operation& o = plan.circuit.operations()[op.opIndex];
        if (op.isChannel) {
            const auto* ch = std::get_if<NoiseChannel>(&o);
            if (!ch || ch->krausOperators().size() != op.kraus.size())
                return false;
            for (std::size_t k = 0; k < op.kraus.size(); ++k)
                if (!DensityMatrix::tryRefreshSuperKernel(
                        op.kraus[k], ch->krausOperators()[k]))
                    return false;
        } else {
            const Gate* g = std::get_if<Gate>(&o);
            if (!g || !DensityMatrix::tryRefreshSuperKernel(op.gate,
                                                            g->unitary()))
                return false;
        }
    }
    return true;
}

DensityMatrix
DensityMatrixSimulator::simulate(const Circuit& circuit) const
{
    return simulatePlanned(planCircuitDm(circuit, policy_));
}

DensityMatrix
DensityMatrixSimulator::simulatePlanned(const DmExecutionPlan& plan) const
{
    DensityMatrix rho(plan.numQubits);
    rho.setExecPolicy(policy_);
    for (const auto& op : plan.ops) {
        if (op.isChannel)
            rho.applyChannelSuper(op.kraus);
        else
            rho.applySuper(op.gate);
    }
    return rho;
}

std::vector<double>
DensityMatrixSimulator::distribution(const Circuit& circuit) const
{
    return simulate(circuit).diagonalProbabilities();
}

std::vector<std::uint64_t>
DensityMatrixSimulator::sample(const Circuit& circuit, std::size_t numSamples,
                               Rng& rng) const
{
    auto probs = distribution(circuit);
    return StateVectorSimulator::sampleFromDistribution(probs, numSamples, rng);
}

} // namespace qkc
