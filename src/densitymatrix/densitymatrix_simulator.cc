#include "densitymatrix/densitymatrix_simulator.h"

#include <stdexcept>

#include "circuit/fusion.h"
#include "statevector/statevector_simulator.h"

namespace qkc {

DensityMatrix
DensityMatrixSimulator::simulate(const Circuit& circuit) const
{
    const Circuit fused =
        policy_.fuseGates ? fuseGates(circuit) : circuit;
    DensityMatrix rho(circuit.numQubits());
    rho.setExecPolicy(policy_);
    for (const auto& op : fused.operations()) {
        if (const Gate* g = std::get_if<Gate>(&op)) {
            rho.applyUnitary(g->unitary(), g->qubits());
        } else {
            const auto& ch = std::get<NoiseChannel>(op);
            rho.applyChannel(ch.krausOperators(), ch.qubits());
        }
    }
    return rho;
}

std::vector<double>
DensityMatrixSimulator::distribution(const Circuit& circuit) const
{
    return simulate(circuit).diagonalProbabilities();
}

std::vector<std::uint64_t>
DensityMatrixSimulator::sample(const Circuit& circuit, std::size_t numSamples,
                               Rng& rng) const
{
    auto probs = distribution(circuit);
    return StateVectorSimulator::sampleFromDistribution(probs, numSamples, rng);
}

} // namespace qkc
