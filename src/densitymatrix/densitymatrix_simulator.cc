#include "densitymatrix/densitymatrix_simulator.h"

#include <stdexcept>

#include "statevector/statevector_simulator.h"

namespace qkc {

DensityMatrix
DensityMatrixSimulator::simulate(const Circuit& circuit) const
{
    DensityMatrix rho(circuit.numQubits());
    for (const auto& op : circuit.operations()) {
        if (const Gate* g = std::get_if<Gate>(&op)) {
            const auto& q = g->qubits();
            switch (g->arity()) {
              case 1:
                rho.applyUnitarySingle(g->unitary(), q[0]);
                break;
              case 2:
                rho.applyUnitaryTwo(g->unitary(), q[0], q[1]);
                break;
              case 3:
                rho.applyUnitaryThree(g->unitary(), q[0], q[1], q[2]);
                break;
              default:
                throw std::logic_error("DensityMatrixSimulator: bad arity");
            }
        } else {
            const auto& ch = std::get<NoiseChannel>(op);
            rho.applyChannel(ch.krausOperators(), ch.qubits());
        }
    }
    return rho;
}

std::vector<double>
DensityMatrixSimulator::distribution(const Circuit& circuit) const
{
    return simulate(circuit).diagonalProbabilities();
}

std::vector<std::uint64_t>
DensityMatrixSimulator::sample(const Circuit& circuit, std::size_t numSamples,
                               Rng& rng) const
{
    auto probs = distribution(circuit);
    return StateVectorSimulator::sampleFromDistribution(probs, numSamples, rng);
}

} // namespace qkc
