#include "densitymatrix/densitymatrix_simulator.h"

#include "obs/metrics.h"
#include "obs/trace.h"

#include <stdexcept>

#include "circuit/fusion.h"
#include "exec/execution_plan.h"
#include "statevector/statevector_simulator.h"

namespace qkc {

namespace {

// Same names as the exec layer's counters: the registry keys metrics by
// name, so sv and dm path work accumulates into one set of exec.path.*
// totals.
obs::Counter dmPathNodesCounter("exec.path.nodes");
obs::Counter dmPathMmNodesCounter("exec.path.mmNodes");
obs::Counter dmPathMmProductsCounter("exec.path.mmProducts");
obs::Counter dmPathCachedCounter("exec.path.cachedSubtrees");

void
compileDmOps(DmExecutionPlan& plan)
{
    const auto& ops = plan.circuit.operations();
    plan.ops.clear();
    plan.ops.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        DmPlannedOp p;
        p.opIndex = i;
        if (const Gate* g = std::get_if<Gate>(&ops[i])) {
            p.gate = DensityMatrix::compileSuperKernel(g->unitary(),
                                                       g->qubits(),
                                                       plan.numQubits);
        } else {
            const auto& ch = std::get<NoiseChannel>(ops[i]);
            p.isChannel = true;
            p.kraus.reserve(ch.krausOperators().size());
            for (const Matrix& e : ch.krausOperators())
                p.kraus.push_back(DensityMatrix::compileSuperKernel(
                    e, ch.qubits(), plan.numQubits));
        }
        plan.ops.push_back(std::move(p));
    }
}

/** One chunk per fusion group (see exec's groupTaskPolicy). */
ExecPolicy
dmGroupTaskPolicy(const ExecPolicy& policy)
{
    ExecPolicy p = policy;
    p.serialThreshold = 2;
    p.grain = 1;
    return p;
}

bool
dmOpIsFrozen(const Operation& op)
{
    const Gate* g = std::get_if<Gate>(&op);
    return g && !g->isParameterized() && g->kind() != GateKind::Custom1Q &&
           g->kind() != GateKind::Custom2Q;
}

void
dmAppendOperation(Circuit& out, const Operation& op)
{
    if (const Gate* g = std::get_if<Gate>(&op))
        out.append(*g);
    else
        out.append(std::get<NoiseChannel>(op));
}

} // namespace

DmExecutionPlan
planCircuitDm(const Circuit& circuit, const ExecPolicy& policy)
{
    QKC_SPAN("exec.planDm");
    DmExecutionPlan plan;
    plan.numQubits = circuit.numQubits();
    plan.fusionEnabled = policy.fuseGates;
    if (policy.fuseGates) {
        plan.recipe = planFusion(circuit, {});
        plan.circuit = *materializeFusion(plan.recipe, circuit, &plan.fusion);
    } else {
        plan.circuit = circuit;
    }
    compileDmOps(plan);
    return plan;
}

DmExecutionPlan
planCircuitDm(const Circuit& circuit, const ExecPolicy& policy,
              const PathOptions& pathOptions)
{
    if (!pathOptions.active()) {
        // Linear/Auto: the two-argument plan, annotated with its chain.
        DmExecutionPlan plan = planCircuitDm(circuit, policy);
        plan.pathOptions = pathOptions;
        plan.sourceHash = structureHash(circuit);
        plan.path = planSimulationPath(plan.circuit, pathOptions);
        dmPathNodesCounter.add(plan.path.nodes.size());
        return plan;
    }

    QKC_SPAN("exec.planDm");
    DmExecutionPlan plan;
    plan.numQubits = circuit.numQubits();
    plan.fusionEnabled = policy.fuseGates;
    plan.pathOptions = pathOptions;
    plan.sourceHash = structureHash(circuit);

    if (policy.fuseGates) {
        FusionOptions fusionOptions;
        fusionOptions.barrierChannels = true;
        plan.recipe = planFusion(circuit, fusionOptions);

        const std::size_t numGroups = plan.recipe.groups.size();
        std::vector<GroupResult> results(numGroups);
        {
            QKC_SPAN("exec.mm");
            parallelForChunks(dmGroupTaskPolicy(policy), numGroups,
                              [&](std::size_t, std::uint64_t begin,
                                  std::uint64_t end) {
                                  for (std::uint64_t g = begin; g < end; ++g)
                                      results[g] = materializeGroup(
                                          plan.recipe,
                                          static_cast<std::size_t>(g),
                                          circuit);
                              });
        }

        plan.frozenGroup.resize(numGroups, false);
        Circuit fused(plan.numQubits);
        for (std::size_t g = 0; g < numGroups; ++g) {
            plan.frozenGroup[g] =
                groupIsFrozen(plan.recipe.groups[g], circuit);
            plan.mmProducts += results[g].products;
            if (!results[g].emitted)
                continue;
            plan.frozenOp.push_back(plan.frozenGroup[g]);
            dmAppendOperation(fused, *results[g].op);
        }
        plan.fusion = plan.recipe.stats;
        plan.fusion.gatesOut = fused.gateCount();
        plan.circuit = std::move(fused);
    } else {
        plan.circuit = circuit;
        plan.frozenOp.reserve(circuit.size());
        for (const Operation& op : circuit.operations())
            plan.frozenOp.push_back(dmOpIsFrozen(op));
    }

    compileDmOps(plan);
    plan.path = planSimulationPath(plan.circuit, pathOptions);
    dmPathNodesCounter.add(plan.path.nodes.size());
    dmPathMmNodesCounter.add(plan.path.mmNodes);
    dmPathMmProductsCounter.add(plan.mmProducts);
    return plan;
}

namespace {

/** Rebind of a path-scheduled fused dm plan (see exec's rebindPathPlan). */
bool
rebindDmPathPlan(DmExecutionPlan& plan, const Circuit& circuit)
{
    if (structureHash(circuit) != plan.sourceHash)
        return false;
    const std::size_t numGroups = plan.recipe.groups.size();
    if (plan.frozenGroup.size() != numGroups ||
        plan.frozenOp.size() != plan.ops.size())
        return false;

    std::vector<GroupResult> results(numGroups);
    {
        QKC_SPAN("exec.mm");
        parallelForChunks(dmGroupTaskPolicy({}), numGroups,
                          [&](std::size_t, std::uint64_t begin,
                              std::uint64_t end) {
                              for (std::uint64_t g = begin; g < end; ++g)
                                  if (!plan.frozenGroup[g])
                                      results[g] = materializeGroup(
                                          plan.recipe,
                                          static_cast<std::size_t>(g),
                                          circuit);
                          });
    }

    Circuit fused(plan.numQubits);
    std::size_t opIndex = 0;
    std::size_t products = 0;
    std::size_t cached = 0;
    for (std::size_t g = 0; g < numGroups; ++g) {
        const bool dropped = plan.recipe.groups[g].dropped;
        if (plan.frozenGroup[g]) {
            ++cached;
            if (dropped)
                continue;
            if (opIndex >= plan.ops.size())
                return false;
            dmAppendOperation(
                fused, plan.circuit.operations()[plan.ops[opIndex].opIndex]);
            ++opIndex;
            continue;
        }
        GroupResult& r = results[g];
        if (!r.ok)
            return false; // identity boundary crossed: re-plan
        products += r.products;
        if (!r.emitted)
            continue;
        if (opIndex >= plan.ops.size())
            return false;
        dmAppendOperation(fused, *r.op);
        ++opIndex;
    }
    if (opIndex != plan.ops.size())
        return false;

    plan.circuit = std::move(fused);
    plan.fusion = plan.recipe.stats;
    plan.fusion.gatesOut = plan.circuit.gateCount();
    plan.mmProducts = products;
    plan.cachedSubtrees = cached;
    dmPathMmProductsCounter.add(products);
    dmPathCachedCounter.add(cached);
    return true;
}

} // namespace

bool
tryRebindDmPlan(DmExecutionPlan& plan, const Circuit& circuit)
{
    // On any failure the caller re-plans from scratch, so a partially
    // refreshed plan is never executed.
    if (circuit.numQubits() != plan.numQubits)
        return false;

    const bool pathScheduled = plan.pathScheduled();
    plan.cachedSubtrees = 0;
    if (pathScheduled && plan.fusionEnabled) {
        if (!rebindDmPathPlan(plan, circuit))
            return false;
    } else if (plan.fusionEnabled) {
        // materializeFusion validates indices, kinds and wires itself.
        auto fused = materializeFusion(plan.recipe, circuit, &plan.fusion);
        if (!fused || fused->size() != plan.circuit.size())
            return false;
        plan.circuit = std::move(*fused);
    } else {
        if (!sameStructure(plan.circuit, circuit))
            return false;
        plan.circuit = circuit;
        if (pathScheduled) {
            // Frozen leaves keep their kernels (matrices cannot change).
            std::size_t cached = 0;
            for (bool frozen : plan.frozenOp)
                cached += frozen ? 1 : 0;
            plan.cachedSubtrees = cached;
            dmPathCachedCounter.add(cached);
        }
    }

    for (std::size_t i = 0; i < plan.ops.size(); ++i) {
        DmPlannedOp& op = plan.ops[i];
        if (pathScheduled && i < plan.frozenOp.size() && plan.frozenOp[i])
            continue; // frozen subtree: superkernel kept as-is
        const Operation& o = plan.circuit.operations()[op.opIndex];
        if (op.isChannel) {
            const auto* ch = std::get_if<NoiseChannel>(&o);
            if (!ch || ch->krausOperators().size() != op.kraus.size())
                return false;
            for (std::size_t k = 0; k < op.kraus.size(); ++k)
                if (!DensityMatrix::tryRefreshSuperKernel(
                        op.kraus[k], ch->krausOperators()[k]))
                    return false;
        } else {
            const Gate* g = std::get_if<Gate>(&o);
            if (!g || !DensityMatrix::tryRefreshSuperKernel(op.gate,
                                                            g->unitary()))
                return false;
        }
    }
    return true;
}

DensityMatrix
DensityMatrixSimulator::simulate(const Circuit& circuit) const
{
    return simulatePlanned(planCircuitDm(circuit, policy_));
}

DensityMatrix
DensityMatrixSimulator::simulatePlanned(const DmExecutionPlan& plan) const
{
    DensityMatrix rho(plan.numQubits);
    rho.setExecPolicy(policy_);
    for (const auto& op : plan.ops) {
        if (op.isChannel)
            rho.applyChannelSuper(op.kraus);
        else
            rho.applySuper(op.gate);
    }
    return rho;
}

std::vector<double>
DensityMatrixSimulator::distribution(const Circuit& circuit) const
{
    return simulate(circuit).diagonalProbabilities();
}

std::vector<std::uint64_t>
DensityMatrixSimulator::sample(const Circuit& circuit, std::size_t numSamples,
                               Rng& rng) const
{
    auto probs = distribution(circuit);
    return StateVectorSimulator::sampleFromDistribution(probs, numSamples, rng);
}

} // namespace qkc
