#include "algorithms/algorithms.h"

namespace qkc {

Circuit
bellCircuit()
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    return c;
}

Circuit
noisyBellCircuit(double gamma)
{
    Circuit c(2);
    c.h(0);
    c.append(NoiseChannel::phaseDamping(0, gamma));
    c.cnot(0, 1);
    return c;
}

Circuit
ghzCircuit(std::size_t numQubits)
{
    Circuit c(numQubits);
    c.h(0);
    for (std::size_t q = 1; q < numQubits; ++q)
        c.cnot(q - 1, q);
    return c;
}

Circuit
chshCircuit(double thetaA, double thetaB)
{
    Circuit c = bellCircuit();
    c.ry(0, -thetaA).ry(1, -thetaB);
    return c;
}

Circuit
teleportationCircuit(double theta)
{
    Circuit c(3);
    // Message on qubit 0.
    c.ry(0, theta);
    // Bell pair between qubits 1 (Alice) and 2 (Bob).
    c.h(1).cnot(1, 2);
    // Alice's Bell measurement, deferred: the measurement-dependent X and Z
    // corrections on Bob's qubit become quantum-controlled gates.
    c.cnot(0, 1).h(0);
    c.cnot(1, 2);  // X correction controlled on Alice's second qubit
    c.cz(0, 2);    // Z correction controlled on Alice's first qubit
    return c;
}

} // namespace qkc
