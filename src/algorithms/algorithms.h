#ifndef QKC_ALGORITHMS_ALGORITHMS_H
#define QKC_ALGORITHMS_ALGORITHMS_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "util/rng.h"

namespace qkc {

/**
 * The quantum algorithm benchmark suite the paper validates against
 * (Sections 3.2.3, 3.3.1 and artifact appendix A.6.1): Bell / CHSH /
 * teleportation basics, the oracle algorithms (Deutsch-Jozsa,
 * Bernstein-Vazirani, Simon, hidden shift), QFT, Grover, Shor's
 * order finding, and GRCS-style random circuit sampling.
 *
 * Every factory returns a pure-gate circuit (noise is layered on by the
 * caller via Circuit::withNoiseAfterEachGate) and documents the expected
 * measurement outcome used by the validation tests.
 */

/** 2-qubit Bell state (|00> + |11>)/sqrt(2). */
Circuit bellCircuit();

/**
 * The paper's running example (Figure 2a): Bell state creation with a phase
 * damping channel of strength `gamma` on qubit 0 between the H and the CNOT.
 */
Circuit noisyBellCircuit(double gamma = 0.36);

/** n-qubit GHZ state (|0..0> + |1..1>)/sqrt(2). */
Circuit ghzCircuit(std::size_t numQubits);

/**
 * CHSH protocol circuit: Bell pair, then measurement-basis rotations
 * Ry(-thetaA) on qubit 0 and Ry(-thetaB) on qubit 1. The Z x Z correlation
 * of the output equals cos(thetaA - thetaB).
 */
Circuit chshCircuit(double thetaA, double thetaB);

/**
 * Quantum teleportation of the state Ry(theta)|0> from qubit 0 to qubit 2
 * with deferred-measurement corrections. The marginal distribution of qubit
 * 2 is {cos^2(theta/2), sin^2(theta/2)}.
 */
Circuit teleportationCircuit(double theta);

/**
 * Deutsch-Jozsa on n input qubits + 1 ancilla. If `balancedMask` is zero the
 * oracle is constant; otherwise f(x) = parity(x & balancedMask) (balanced).
 * Measuring the first n qubits yields all zeros iff the oracle is constant.
 */
Circuit deutschJozsaCircuit(std::size_t n, std::uint64_t balancedMask);

/**
 * Bernstein-Vazirani on n input qubits + 1 ancilla with hidden string `a`
 * (bit i of `a` = qubit i, qubit 0 most significant). The first n qubits
 * measure to exactly `a`.
 */
Circuit bernsteinVaziraniCircuit(std::size_t n, std::uint64_t a);

/**
 * Simon's problem on 2n qubits with hidden period `s` != 0. Measuring the
 * first n qubits yields y with y . s = 0 (mod 2), uniformly over that
 * subspace.
 */
Circuit simonCircuit(std::size_t n, std::uint64_t s);

/**
 * Hidden shift for the Maiorana-McFarland bent function
 * f(x) = XOR_i x_{2i} x_{2i+1} on n qubits (n even) with shift `s`.
 * Measures to exactly `s`.
 */
Circuit hiddenShiftCircuit(std::size_t n, std::uint64_t s);

/** Quantum Fourier transform on n qubits (includes the final swaps). */
Circuit qftCircuit(std::size_t n);

/** Inverse QFT on n qubits. */
Circuit inverseQftCircuit(std::size_t n);

/**
 * Grover search over n in [2, 4] qubits for `marked`. n = 4 uses one clean
 * ancilla for the multi-controlled Z (total qubits = n + (n == 4 ? 1 : 0)).
 * `iterations` defaults to the optimal floor(pi/4 * sqrt(2^n)).
 * The first n qubits measure to `marked` with high probability.
 */
Circuit groverCircuit(std::size_t n, std::uint64_t marked, int iterations = -1);

/** Number of search qubits whose measurement yields the marked element. */
std::size_t groverSearchQubits(const Circuit& c, std::size_t n);

/**
 * Shor order finding for N = 15 with coprime base a in
 * {2, 4, 7, 8, 11, 13, 14}, using `counting` phase-estimation qubits
 * (Vandersypen-style compiled modular multiplication: rotations and
 * complements of the 4-bit target register).
 *
 * Qubits [0, counting) hold the phase estimate (inverse-QFT'd); qubits
 * [counting, counting+4) hold the work register initialized to |0001>.
 * The counting register measures to m with m/2^counting ~ k/r for the
 * multiplicative order r of a mod 15.
 */
Circuit shorOrderFindingCircuit(std::size_t counting, unsigned a);

/** Multiplicative order of a modulo n (brute force). */
unsigned multiplicativeOrder(unsigned a, unsigned n);

/**
 * Quantum phase estimation of the single-qubit phase gate U = P(2 pi phi)
 * on its eigenstate |1>, with `counting` estimation qubits. The counting
 * register (qubits [0, counting)) measures to m with m / 2^counting ~ phi;
 * exact when phi is a multiple of 1 / 2^counting.
 */
Circuit phaseEstimationCircuit(std::size_t counting, double phi);

/**
 * n-qubit W state (uniform superposition of all weight-1 basis strings),
 * built with the cascade of controlled rotations; exercises the dense
 * two-qubit chain-rule encoding in the Bayesian-network front-end.
 */
Circuit wStateCircuit(std::size_t n);

/**
 * GRCS-style random circuit sampling workload on a rows x cols qubit grid
 * (paper Figure 6's unstructured workload): a layer of H, then `depth`
 * layers alternating CZ patterns with random single-qubit gates drawn from
 * {sqrt(X), sqrt(Y), T}.
 */
Circuit rcsCircuit(std::size_t rows, std::size_t cols, std::size_t depth,
                   Rng& rng);

} // namespace qkc

#endif // QKC_ALGORITHMS_ALGORITHMS_H
