#include "algorithms/algorithms.h"

#include <cmath>

namespace qkc {

Circuit
qftCircuit(std::size_t n)
{
    // Standard textbook QFT: on each qubit an H followed by controlled
    // phases from every later qubit, then a qubit-order reversal.
    Circuit c(n);
    for (std::size_t i = 0; i < n; ++i) {
        c.h(i);
        for (std::size_t j = i + 1; j < n; ++j) {
            double theta = M_PI / static_cast<double>(1ULL << (j - i));
            c.cphase(j, i, theta);
        }
    }
    for (std::size_t i = 0; i < n / 2; ++i)
        c.swap(i, n - 1 - i);
    return c;
}

Circuit
inverseQftCircuit(std::size_t n)
{
    // Reverse gate order with negated phases.
    Circuit c(n);
    for (std::size_t i = n; i-- > 0;) {
        for (std::size_t j = n; j-- > i + 1;) {
            double theta = -M_PI / static_cast<double>(1ULL << (j - i));
            c.cphase(j, i, theta);
        }
        c.h(i);
    }
    Circuit swapped(n);
    for (std::size_t i = 0; i < n / 2; ++i)
        swapped.swap(i, n - 1 - i);
    swapped.extend(c);
    return swapped;
}

} // namespace qkc
