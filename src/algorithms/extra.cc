#include "algorithms/algorithms.h"

#include <cmath>
#include <stdexcept>

namespace qkc {

Circuit
phaseEstimationCircuit(std::size_t counting, double phi)
{
    if (counting < 1 || counting > 10)
        throw std::invalid_argument("phaseEstimationCircuit: counting in [1,10]");
    const std::size_t t = counting;
    Circuit c(t + 1);
    const std::size_t eigen = t;  // eigenstate qubit

    c.x(eigen);  // |1> is the eigenstate of P(theta) with eigenvalue e^{i theta}
    for (std::size_t j = 0; j < t; ++j)
        c.h(j);
    // Counting qubit j (MSB first) controls U^(2^(t-1-j)).
    for (std::size_t j = 0; j < t; ++j) {
        double theta = 2.0 * M_PI * phi * std::pow(2.0, static_cast<double>(t - 1 - j));
        c.cphase(j, eigen, theta);
    }
    // Inverse QFT on the counting register.
    for (std::size_t i = 0; i < t / 2; ++i)
        c.swap(i, t - 1 - i);
    for (std::size_t i = t; i-- > 0;) {
        for (std::size_t j = t; j-- > i + 1;) {
            double theta = -M_PI / static_cast<double>(1ULL << (j - i));
            c.cphase(j, i, theta);
        }
        c.h(i);
    }
    return c;
}

Circuit
wStateCircuit(std::size_t n)
{
    if (n < 2)
        throw std::invalid_argument("wStateCircuit: need n >= 2");
    Circuit c(n);
    c.x(0);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        // Controlled-Ry(theta) spreading 1/(n-i) of the remaining amplitude,
        // followed by a CNOT that moves the excitation.
        double theta = 2.0 * std::acos(std::sqrt(
            1.0 / static_cast<double>(n - i)));
        Matrix ry = Gate(GateKind::Ry, {0}, theta).unitary();
        Matrix cry = Matrix::identity(4);
        for (std::size_t r = 0; r < 2; ++r)
            for (std::size_t col = 0; col < 2; ++col)
                cry(2 + r, 2 + col) = ry(r, col);
        c.append(Gate::custom({i, i + 1}, cry, "CRy"));
        c.cnot(i + 1, i);
    }
    return c;
}

} // namespace qkc
