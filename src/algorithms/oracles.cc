#include "algorithms/algorithms.h"

#include <stdexcept>

namespace qkc {

namespace {

bool
maskBit(std::uint64_t mask, std::size_t qubit, std::size_t n)
{
    // Qubit 0 is the most significant bit of an n-bit string.
    return (mask >> (n - 1 - qubit)) & 1;
}

} // namespace

Circuit
deutschJozsaCircuit(std::size_t n, std::uint64_t balancedMask)
{
    Circuit c(n + 1);
    const std::size_t anc = n;
    // Phase-kickback ancilla in |->.
    c.x(anc).h(anc);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    // Oracle: f(x) = parity(x & mask); constant-zero when mask == 0.
    for (std::size_t q = 0; q < n; ++q) {
        if (maskBit(balancedMask, q, n))
            c.cnot(q, anc);
    }
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    return c;
}

Circuit
bernsteinVaziraniCircuit(std::size_t n, std::uint64_t a)
{
    // BV is DJ with the hidden-string parity oracle; the final H layer maps
    // the phase pattern back to the basis state |a>.
    return deutschJozsaCircuit(n, a);
}

Circuit
simonCircuit(std::size_t n, std::uint64_t s)
{
    if (s == 0 || s >= (std::uint64_t{1} << n))
        throw std::invalid_argument("simonCircuit: need 0 < s < 2^n");

    Circuit c(2 * n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    // Oracle f(x) = x XOR (x_j ? s : 0) where j is the first set bit of s;
    // f is two-to-one with period s. First copy x into the output register.
    for (std::size_t q = 0; q < n; ++q)
        c.cnot(q, n + q);
    std::size_t pivot = 0;
    while (!maskBit(s, pivot, n))
        ++pivot;
    for (std::size_t q = 0; q < n; ++q) {
        if (maskBit(s, q, n))
            c.cnot(pivot, n + q);
    }
    // Fourier sample the input register.
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    return c;
}

Circuit
hiddenShiftCircuit(std::size_t n, std::uint64_t s)
{
    if (n % 2 != 0)
        throw std::invalid_argument("hiddenShiftCircuit: n must be even");

    // Maiorana-McFarland bent function f(x) = XOR_i x_{2i} x_{2i+1}; its
    // dual is itself, so the van Dam-Hallgren-Ip circuit is
    // H^n . O_f . H^n . O_g . H^n with O_g the shifted oracle.
    Circuit c(n);
    auto oracle = [&] {
        for (std::size_t i = 0; i + 1 < n; i += 2)
            c.cz(i, i + 1);
    };
    auto shift = [&] {
        for (std::size_t q = 0; q < n; ++q) {
            if (maskBit(s, q, n))
                c.x(q);
        }
    };

    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    shift();
    oracle();
    shift();
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    oracle();
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    return c;
}

} // namespace qkc
