#include "algorithms/algorithms.h"

#include <cmath>
#include <stdexcept>

namespace qkc {

namespace {

/**
 * Appends multiplication by `m` modulo 15 on the 4-bit work register
 * starting at `w0`, controlled on qubit `ctrl`.
 *
 * Multiplication by 2^k mod 15 is a left rotation of the 4-bit string by k;
 * multiplication by 14 = -1 mod 15 is bitwise complement (Vandersypen-style
 * compiled arithmetic). Every unit of Z_15^* factors as 2^k * (+-1):
 *   2,4,8 = rotations;  14 = complement;  7,11,13 = rotation + complement.
 */
void
controlledMultMod15(Circuit& c, std::size_t ctrl, std::size_t w0, unsigned m)
{
    auto cswapPair = [&](std::size_t a, std::size_t b) {
        c.cswap(ctrl, w0 + a, w0 + b);
    };
    auto rotateLeft1 = [&] { cswapPair(0, 1); cswapPair(1, 2); cswapPair(2, 3); };
    auto rotateLeft2 = [&] { cswapPair(0, 2); cswapPair(1, 3); };
    auto rotateLeft3 = [&] { cswapPair(2, 3); cswapPair(1, 2); cswapPair(0, 1); };
    auto complement = [&] {
        for (std::size_t i = 0; i < 4; ++i)
            c.cnot(ctrl, w0 + i);
    };

    switch (m) {
      case 1: break;
      case 2: rotateLeft1(); break;
      case 4: rotateLeft2(); break;
      case 8: rotateLeft3(); break;
      case 14: complement(); break;
      case 7: rotateLeft3(); complement(); break;   // 14 * 8 = 7 (mod 15)
      case 11: rotateLeft2(); complement(); break;  // 14 * 4 = 11 (mod 15)
      case 13: rotateLeft1(); complement(); break;  // 14 * 2 = 13 (mod 15)
      default:
        throw std::invalid_argument("controlledMultMod15: m not in Z_15^*");
    }
}

} // namespace

unsigned
multiplicativeOrder(unsigned a, unsigned n)
{
    unsigned x = a % n;
    for (unsigned r = 1; r <= n; ++r) {
        if (x == 1)
            return r;
        x = x * (a % n) % n;
    }
    throw std::invalid_argument("multiplicativeOrder: a not coprime to n");
}

Circuit
shorOrderFindingCircuit(std::size_t counting, unsigned a)
{
    const unsigned validBases[] = {2, 4, 7, 8, 11, 13, 14};
    bool valid = false;
    for (unsigned b : validBases)
        valid = valid || (a == b);
    if (!valid)
        throw std::invalid_argument("shorOrderFindingCircuit: base must be "
                                    "coprime to 15 and != 1");
    if (counting < 1 || counting > 8)
        throw std::invalid_argument("shorOrderFindingCircuit: counting in [1,8]");

    const std::size_t t = counting;
    const std::size_t w0 = t;  // 4-bit work register at [t, t+4)
    Circuit c(t + 4);

    for (std::size_t j = 0; j < t; ++j)
        c.h(j);
    c.x(w0 + 3);  // work register = |0001>

    // Counting qubit j (MSB first) controls multiplication by a^(2^(t-1-j)).
    for (std::size_t j = 0; j < t; ++j) {
        unsigned exponentBits = static_cast<unsigned>(t - 1 - j);
        unsigned m = a % 15;
        for (unsigned k = 0; k < exponentBits; ++k)
            m = m * m % 15;
        controlledMultMod15(c, j, w0, m);
    }
    // Inverse QFT on the counting register: the swaps of the forward QFT
    // first, then the H / controlled-phase ladder in reverse with negated
    // angles.
    for (std::size_t i = 0; i < t / 2; ++i)
        c.swap(i, t - 1 - i);
    for (std::size_t i = t; i-- > 0;) {
        for (std::size_t j = t; j-- > i + 1;) {
            double theta = -M_PI / static_cast<double>(1ULL << (j - i));
            c.cphase(j, i, theta);
        }
        c.h(i);
    }
    return c;
}

} // namespace qkc
