#include "algorithms/algorithms.h"

#include <cmath>

namespace qkc {

namespace {

/** sqrt(X): X^(1/2) with eigenvalues {1, i}. */
Matrix
sqrtX()
{
    const Complex a{0.5, 0.5};
    const Complex b{0.5, -0.5};
    return Matrix{{a, b}, {b, a}};
}

/** sqrt(Y). */
Matrix
sqrtY()
{
    const Complex a{0.5, 0.5};
    return Matrix{{a, -a}, {a, a}};
}

} // namespace

Circuit
rcsCircuit(std::size_t rows, std::size_t cols, std::size_t depth, Rng& rng)
{
    const std::size_t n = rows * cols;
    Circuit c(n);
    auto q = [&](std::size_t r, std::size_t col) { return r * cols + col; };

    for (std::size_t i = 0; i < n; ++i)
        c.h(i);

    // GRCS-style template: layers alternate between four CZ patterns
    // (horizontal/vertical pairs at even/odd offsets); qubits touched by a
    // CZ in the previous layer receive a random gate from
    // {sqrt(X), sqrt(Y), T} (never the same twice in a row by construction
    // of the random draw below).
    std::vector<int> lastGate(n, -1);
    for (std::size_t layer = 0; layer < depth; ++layer) {
        std::vector<bool> touched(n, false);
        const std::size_t pattern = layer % 4;
        if (pattern < 2) {
            // Horizontal pairs at even (pattern 0) or odd (pattern 1) offset.
            for (std::size_t r = 0; r < rows; ++r) {
                for (std::size_t col = pattern; col + 1 < cols; col += 2) {
                    c.cz(q(r, col), q(r, col + 1));
                    touched[q(r, col)] = touched[q(r, col + 1)] = true;
                }
            }
        } else {
            // Vertical pairs at even (pattern 2) or odd (pattern 3) offset.
            for (std::size_t r = pattern - 2; r + 1 < rows; r += 2) {
                for (std::size_t col = 0; col < cols; ++col) {
                    c.cz(q(r, col), q(r + 1, col));
                    touched[q(r, col)] = touched[q(r + 1, col)] = true;
                }
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (!touched[i])
                continue;
            int pick = static_cast<int>(rng.below(3));
            if (pick == lastGate[i])
                pick = (pick + 1) % 3;
            lastGate[i] = pick;
            switch (pick) {
              case 0:
                c.append(Gate::custom({i}, sqrtX(), "X^0.5"));
                break;
              case 1:
                c.append(Gate::custom({i}, sqrtY(), "Y^0.5"));
                break;
              default:
                c.t(i);
                break;
            }
        }
    }
    return c;
}

} // namespace qkc
