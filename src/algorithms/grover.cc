#include "algorithms/algorithms.h"

#include <cmath>
#include <stdexcept>

namespace qkc {

namespace {

/**
 * Applies Z controlled on all n search qubits being 1, using clean ancillas
 * starting at index n: AND-chain of Toffolis into the ancillas, a final
 * CZ/CCZ, then uncomputation. Supports n in [2, 4].
 */
void
multiControlledZ(Circuit& c, std::size_t n)
{
    switch (n) {
      case 2:
        c.cz(0, 1);
        return;
      case 3:
        c.ccz(0, 1, 2);
        return;
      case 4:
        // anc = q0 & q1; phase iff anc & q2 & q3; uncompute.
        c.ccx(0, 1, 4);
        c.ccz(4, 2, 3);
        c.ccx(0, 1, 4);
        return;
      default:
        throw std::invalid_argument("multiControlledZ: n must be in [2, 4]");
    }
}

void
flipZeroBits(Circuit& c, std::size_t n, std::uint64_t value)
{
    for (std::size_t q = 0; q < n; ++q) {
        if (!((value >> (n - 1 - q)) & 1))
            c.x(q);
    }
}

} // namespace

Circuit
groverCircuit(std::size_t n, std::uint64_t marked, int iterations)
{
    if (n < 2 || n > 4)
        throw std::invalid_argument("groverCircuit: n must be in [2, 4]");
    if (marked >= (std::uint64_t{1} << n))
        throw std::invalid_argument("groverCircuit: marked out of range");

    const std::size_t ancillas = n == 4 ? 1 : 0;
    Circuit c(n + ancillas);

    if (iterations < 0) {
        iterations = static_cast<int>(
            std::floor(M_PI / 4.0 * std::sqrt(std::pow(2.0, n))));
        if (iterations < 1)
            iterations = 1;
    }

    for (std::size_t q = 0; q < n; ++q)
        c.h(q);

    for (int it = 0; it < iterations; ++it) {
        // Phase oracle: -1 on |marked>.
        flipZeroBits(c, n, marked);
        multiControlledZ(c, n);
        flipZeroBits(c, n, marked);
        // Diffusion: reflect about the uniform superposition.
        for (std::size_t q = 0; q < n; ++q)
            c.h(q);
        for (std::size_t q = 0; q < n; ++q)
            c.x(q);
        multiControlledZ(c, n);
        for (std::size_t q = 0; q < n; ++q)
            c.x(q);
        for (std::size_t q = 0; q < n; ++q)
            c.h(q);
    }
    return c;
}

std::size_t
groverSearchQubits(const Circuit& c, std::size_t n)
{
    (void)c;
    return n;
}

} // namespace qkc
