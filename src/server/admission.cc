#include "server/admission.h"

#include <variant>

namespace qkc {
namespace server {

namespace {

/** 16·2^n bytes of amplitudes (sv), overflow-safe. */
bool
denseStateFits(std::size_t numQubits, std::uint64_t budget)
{
    if (numQubits >= 60)
        return false; // 16·2^n overflows uint64 past n = 59
    return (16ull << numQubits) <= budget;
}

/** 16·4^n bytes of density matrix (dm), overflow-safe. */
bool
denseMatrixFits(std::size_t numQubits, std::uint64_t budget)
{
    if (numQubits >= 30)
        return false; // 16·4^n overflows uint64 past n = 29
    return (16ull << (2 * numQubits)) <= budget;
}

std::string
bytesLabel(std::uint64_t bytes)
{
    if (bytes >= (1ull << 30))
        return std::to_string(bytes >> 30) + " GiB";
    if (bytes >= (1ull << 20))
        return std::to_string(bytes >> 20) + " MiB";
    return std::to_string(bytes) + " bytes";
}

AdmissionVerdict
checkTask(const Task& task, std::size_t numQubits,
          const AdmissionLimits& limits)
{
    if (const auto* s = std::get_if<Sample>(&task)) {
        if (s->shots > limits.maxShots)
            return AdmissionVerdict::reject(
                "shots", "Sample shots " + std::to_string(s->shots) +
                             " exceeds the limit of " +
                             std::to_string(limits.maxShots));
    } else if (const auto* e = std::get_if<Expectation>(&task)) {
        if (e->shots > limits.maxShots)
            return AdmissionVerdict::reject(
                "shots", "Expectation shots " + std::to_string(e->shots) +
                             " exceeds the limit of " +
                             std::to_string(limits.maxShots));
        if (e->observable.terms.size() > limits.maxObservableTerms)
            return AdmissionVerdict::reject(
                "observable",
                "observable has " +
                    std::to_string(e->observable.terms.size()) +
                    " terms, more than the limit of " +
                    std::to_string(limits.maxObservableTerms));
    } else if (const auto* a = std::get_if<Amplitudes>(&task)) {
        if (a->bitstrings.size() > limits.maxAmplitudes)
            return AdmissionVerdict::reject(
                "bitstrings",
                "request asks for " + std::to_string(a->bitstrings.size()) +
                    " amplitudes, more than the limit of " +
                    std::to_string(limits.maxAmplitudes));
    } else if (const auto* p = std::get_if<Probabilities>(&task)) {
        const std::size_t outQubits =
            p->qubits.empty() ? numQubits : p->qubits.size();
        if (outQubits > limits.maxMarginalQubits)
            return AdmissionVerdict::reject(
                "qubits",
                "a " + std::to_string(outQubits) +
                    "-qubit distribution has 2^" + std::to_string(outQubits) +
                    " entries, past the " +
                    std::to_string(limits.maxMarginalQubits) + "-qubit limit");
    }
    return AdmissionVerdict::ok();
}

} // namespace

AdmissionVerdict
admitRequest(const BackendSpec& spec, const Circuit& circuit, const Task& task,
             const AdmissionLimits& limits)
{
    const std::size_t n = circuit.numQubits();

    if (spec.name == "statevector") {
        if (!denseStateFits(n, limits.stateMemoryBytes))
            return AdmissionVerdict::reject(
                "memory", "a " + std::to_string(n) +
                              "-qubit state vector needs 16*2^" +
                              std::to_string(n) +
                              " bytes, past the state-memory budget of " +
                              bytesLabel(limits.stateMemoryBytes));
    } else if (spec.name == "densitymatrix") {
        if (!denseMatrixFits(n, limits.stateMemoryBytes))
            return AdmissionVerdict::reject(
                "memory", "a " + std::to_string(n) +
                              "-qubit density matrix needs 16*4^" +
                              std::to_string(n) +
                              " bytes, past the state-memory budget of " +
                              bytesLabel(limits.stateMemoryBytes));
    } else if (spec.name == "tensornetwork") {
        if (circuit.noiseCount() > 0)
            return AdmissionVerdict::reject(
                "backend",
                "the tensornet backend does not serve noisy circuits");
    } else if (spec.name == "knowledgecompilation") {
        // Exact distribution/amplitude queries enumerate 2^n AC evaluations.
        const bool exactQuery = std::holds_alternative<Amplitudes>(task) ||
                                std::holds_alternative<Probabilities>(task);
        if (exactQuery && n > limits.kcMaxExactQubits)
            return AdmissionVerdict::reject(
                "backend", "kc exact queries enumerate 2^" +
                               std::to_string(n) +
                               " terms, past the " +
                               std::to_string(limits.kcMaxExactQubits) +
                               "-qubit enumeration budget");
    }
    // dd diagrams are structure-dependent with no closed-form bound; the
    // package's own gc threshold is the backstop there.

    return checkTask(task, n, limits);
}

} // namespace server
} // namespace qkc
