#ifndef QKC_SERVER_HTTP_SERVER_H
#define QKC_SERVER_HTTP_SERVER_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "server/server_core.h"

namespace qkc {
namespace server {

/**
 * A minimal HTTP/1.1 front-end for ServerCore: thread-per-connection with
 * keep-alive, Content-Length bodies only (no chunked encoding, no TLS —
 * the daemon binds loopback by default and anything fancier belongs in a
 * reverse proxy). All request semantics live in ServerCore; this layer only
 * parses the request line, headers and body, and writes the response back.
 *
 * Connection threads poll a stop flag between reads (SO_RCVTIMEO), so
 * stop() returns once every handler that was mid-request has finished —
 * the transport half of graceful shutdown. The core's drain flag is the
 * other half: the daemon calls core.beginDrain(), waits for inflight() to
 * reach zero, then stops the transport.
 */
class HttpServer {
  public:
    /** Caps applied before a request reaches the core. */
    static constexpr std::size_t kMaxHeaderBytes = 64u << 10;
    static constexpr std::size_t kMaxBodyBytes = 16u << 20;

    /**
     * Binds 127.0.0.1:`port` and starts accepting (`port` 0 picks an
     * ephemeral port; read the real one back from port()). Throws
     * std::runtime_error when the socket cannot be bound.
     */
    HttpServer(ServerCore& core, std::uint16_t port);
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /** The bound port (resolves an ephemeral bind). */
    std::uint16_t port() const { return port_; }

    /** True until stop() — the daemon's run loop condition. */
    bool running() const { return !stopping_.load(); }

    /**
     * Stops accepting, wakes idle connection threads, and joins every
     * connection thread — in-flight request handlers run to completion.
     * Idempotent.
     */
    void stop();

  private:
    void acceptLoop();
    void serveConnection(int fd);

    ServerCore& core_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread acceptThread_;

    std::mutex mu_; ///< guards workers_
    std::vector<std::thread> workers_;
};

} // namespace server
} // namespace qkc

#endif // QKC_SERVER_HTTP_SERVER_H
