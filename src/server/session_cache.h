#ifndef QKC_SERVER_SESSION_CACHE_H
#define QKC_SERVER_SESSION_CACHE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "vqa/simulator_api.h"

namespace qkc {
namespace server {

struct Waiter; // one queued request; defined in server_core.cc

/**
 * One cached (backend spec, circuit structure) pair: the open Session that
 * amortizes plan compilation across requests, plus the queue through which
 * concurrent same-structure requests coalesce into one runBatch. The entry
 * mutex guards the queue and the running flag; the session itself is only
 * ever touched by the one thread that holds `running` (the batch leader),
 * so session work happens outside the lock.
 */
struct CacheEntry {
    std::string specString;      ///< canonical backend spec, e.g. "sv:fuse=1"
    std::uint64_t structure = 0; ///< structureHash of the circuit

    std::mutex mu;
    std::condition_variable cv;
    bool running = false; ///< a leader is currently draining the queue
    std::vector<std::shared_ptr<Waiter>> queue;

    /**
     * Lazily opened on the first batch (under `running`, not the mutex —
     * plan compilation must not block arrivals). Never touched while
     * another thread holds `running`.
     */
    std::unique_ptr<Session> session;

    /** Requests served through this entry with a warm session. */
    std::size_t hits = 0;

    /**
     * Current coalescing width cap, adapted from the lane imbalance of
     * completed batches: a lopsided fan-out halves it, an even one grows it
     * back toward maxCoalesce. Read/written only by batch leaders.
     */
    std::size_t coalesceCap = 0;
};

/**
 * An LRU cache of open sessions keyed by (backend spec, structure hash).
 * structureHash collisions are harmless by construction: the entry's
 * session is rebound to every request's actual circuit before running, and
 * bind() transparently re-plans when the structure genuinely differs.
 *
 * Entries are handed out as shared_ptr, so an entry evicted while a batch
 * is mid-flight stays alive until its last user drops it — eviction never
 * tears state out from under a leader.
 */
class SessionCache {
  public:
    explicit SessionCache(std::size_t capacity, std::size_t maxCoalesce = 16);

    /**
     * Returns the entry for (spec, structure), creating it (and evicting
     * the least-recently-used entry past capacity) on a miss. `hit` reports
     * whether the entry already existed — the server's cache-hit metric.
     */
    std::shared_ptr<CacheEntry> acquire(const std::string& specString,
                                        std::uint64_t structure, bool& hit);

    /** Drops every entry (tests exercise the replay-after-eviction path). */
    void clear();

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    std::size_t maxCoalesce() const { return maxCoalesce_; }
    std::size_t evictions() const;

  private:
    const std::size_t capacity_;
    const std::size_t maxCoalesce_;

    mutable std::mutex mu_;
    /** Most-recently-used at the front. */
    std::list<std::shared_ptr<CacheEntry>> lru_;
    std::unordered_map<std::string,
                       std::list<std::shared_ptr<CacheEntry>>::iterator>
        index_;
    std::size_t evictions_ = 0;
};

} // namespace server
} // namespace qkc

#endif // QKC_SERVER_SESSION_CACHE_H
