#include "server/session_cache.h"

#include <stdexcept>

#include "server/server_core.h" // completes Waiter for the shared_ptr deleter

namespace qkc {
namespace server {

namespace {

std::string
entryKey(const std::string& specString, std::uint64_t structure)
{
    return specString + "#" + std::to_string(structure);
}

} // namespace

SessionCache::SessionCache(std::size_t capacity, std::size_t maxCoalesce)
    : capacity_(capacity), maxCoalesce_(maxCoalesce)
{
    if (capacity_ == 0)
        throw std::invalid_argument("SessionCache: capacity must be >= 1");
    if (maxCoalesce_ == 0)
        throw std::invalid_argument("SessionCache: maxCoalesce must be >= 1");
}

std::shared_ptr<CacheEntry>
SessionCache::acquire(const std::string& specString, std::uint64_t structure,
                      bool& hit)
{
    const std::string key = entryKey(specString, structure);
    std::lock_guard<std::mutex> lock(mu_);

    auto it = index_.find(key);
    if (it != index_.end()) {
        hit = true;
        // Refresh recency: splice the node to the front of the LRU list.
        lru_.splice(lru_.begin(), lru_, it->second);
        it->second = lru_.begin();
        ++(*lru_.begin())->hits;
        return *lru_.begin();
    }

    hit = false;
    auto entry = std::make_shared<CacheEntry>();
    entry->specString = specString;
    entry->structure = structure;
    entry->coalesceCap = maxCoalesce_;
    lru_.push_front(entry);
    index_[key] = lru_.begin();

    while (lru_.size() > capacity_) {
        // The evicted shared_ptr may still be held by an in-flight batch;
        // its session dies with the last reference, not here.
        const auto& victim = lru_.back();
        index_.erase(entryKey(victim->specString, victim->structure));
        lru_.pop_back();
        ++evictions_;
    }
    return entry;
}

void
SessionCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    evictions_ += lru_.size();
    index_.clear();
    lru_.clear();
}

std::size_t
SessionCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
}

std::size_t
SessionCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

} // namespace server
} // namespace qkc
