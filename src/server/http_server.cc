#include "server/http_server.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace qkc {
namespace server {

namespace {

const char*
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 422: return "Unprocessable Entity";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Status";
    }
}

std::string
renderResponse(const HttpResult& result, bool keepAlive)
{
    std::string out = "HTTP/1.1 " + std::to_string(result.status) + " " +
                      statusText(result.status) + "\r\n";
    out += "Content-Type: application/json\r\n";
    out += "Content-Length: " + std::to_string(result.body.size()) + "\r\n";
    out += keepAlive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
    out += "\r\n";
    out += result.body;
    return out;
}

bool
sendAll(int fd, const std::string& data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/** ASCII case-insensitive prefix match for header names. */
bool
headerIs(const std::string& line, const char* name)
{
    std::size_t i = 0;
    for (; name[i]; ++i) {
        if (i >= line.size())
            return false;
        const char a = line[i];
        const char b = name[i];
        const char la = (a >= 'A' && a <= 'Z') ? char(a - 'A' + 'a') : a;
        const char lb = (b >= 'A' && b <= 'Z') ? char(b - 'A' + 'a') : b;
        if (la != lb)
            return false;
    }
    return i < line.size() && line[i] == ':';
}

std::string
headerValue(const std::string& line)
{
    const std::size_t colon = line.find(':');
    std::size_t start = colon + 1;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t'))
        ++start;
    return line.substr(start);
}

} // namespace

HttpServer::HttpServer(ServerCore& core, std::uint16_t port) : core_(core)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("HttpServer: socket() failed");

    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        ::close(listenFd_);
        throw std::runtime_error("HttpServer: cannot bind 127.0.0.1:" +
                                 std::to_string(port));
    }
    if (::listen(listenFd_, 64) != 0) {
        ::close(listenFd_);
        throw std::runtime_error("HttpServer: listen() failed");
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);

    acceptThread_ = std::thread([this] { acceptLoop(); });
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::stop()
{
    if (stopping_.exchange(true))
        return;
    // Unblock accept(); connection threads notice the flag at their next
    // read timeout and drain naturally.
    ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    ::close(listenFd_);

    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> lock(mu_);
        workers.swap(workers_);
    }
    for (std::thread& t : workers)
        if (t.joinable())
            t.join();
}

void
HttpServer::acceptLoop()
{
    while (!stopping_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                return;
            continue;
        }
        // Bounded reads so the connection thread re-checks the stop flag
        // twice a second even on an idle keep-alive connection.
        timeval tv{};
        tv.tv_usec = 500 * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        std::lock_guard<std::mutex> lock(mu_);
        workers_.emplace_back([this, fd] { serveConnection(fd); });
    }
}

void
HttpServer::serveConnection(int fd)
{
    std::string buf;
    char chunk[4096];

    while (!stopping_.load()) {
        // -- Read until the end of the header block -------------------------
        std::size_t headerEnd;
        while ((headerEnd = buf.find("\r\n\r\n")) == std::string::npos) {
            if (buf.size() > kMaxHeaderBytes) {
                sendAll(fd, renderResponse(
                                {413, "{\"error\":{\"code\":\"too_large\","
                                      "\"message\":\"headers exceed the "
                                      "limit\"}}"},
                                false));
                ::close(fd);
                return;
            }
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n > 0) {
                buf.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                if (stopping_.load()) {
                    ::close(fd);
                    return;
                }
                continue; // idle keep-alive connection; poll again
            }
            ::close(fd); // peer closed or hard error
            return;
        }

        // -- Request line ---------------------------------------------------
        const std::string head = buf.substr(0, headerEnd);
        const std::size_t lineEnd = head.find("\r\n");
        const std::string requestLine =
            head.substr(0, lineEnd == std::string::npos ? head.size()
                                                        : lineEnd);
        const std::size_t sp1 = requestLine.find(' ');
        const std::size_t sp2 =
            sp1 == std::string::npos ? std::string::npos
                                     : requestLine.find(' ', sp1 + 1);
        if (sp1 == std::string::npos || sp2 == std::string::npos) {
            sendAll(fd, renderResponse(
                            {400, "{\"error\":{\"code\":\"bad_request\","
                                  "\"message\":\"malformed request line\"}}"},
                            false));
            ::close(fd);
            return;
        }
        const std::string method = requestLine.substr(0, sp1);
        const std::string path = requestLine.substr(sp1 + 1, sp2 - sp1 - 1);

        // -- Headers we care about ------------------------------------------
        std::size_t contentLength = 0;
        bool keepAlive = true;
        std::size_t pos = lineEnd == std::string::npos ? head.size()
                                                       : lineEnd + 2;
        while (pos < head.size()) {
            std::size_t eol = head.find("\r\n", pos);
            if (eol == std::string::npos)
                eol = head.size();
            const std::string line = head.substr(pos, eol - pos);
            pos = eol + 2;
            if (headerIs(line, "Content-Length")) {
                try {
                    contentLength = std::stoul(headerValue(line));
                } catch (const std::exception&) {
                    contentLength = kMaxBodyBytes + 1;
                }
            } else if (headerIs(line, "Connection")) {
                keepAlive = headerValue(line) != "close";
            }
        }
        if (contentLength > kMaxBodyBytes) {
            sendAll(fd, renderResponse(
                            {413, "{\"error\":{\"code\":\"too_large\","
                                  "\"message\":\"body exceeds the limit\"}}"},
                            false));
            ::close(fd);
            return;
        }

        // -- Body -----------------------------------------------------------
        const std::size_t bodyStart = headerEnd + 4;
        while (buf.size() < bodyStart + contentLength) {
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n > 0) {
                buf.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
                !stopping_.load())
                continue;
            ::close(fd); // truncated request
            return;
        }
        const std::string body = buf.substr(bodyStart, contentLength);
        buf.erase(0, bodyStart + contentLength); // keep any pipelined bytes

        // -- Dispatch -------------------------------------------------------
        const HttpResult result = core_.handle(method, path, body);
        if (!sendAll(fd, renderResponse(result, keepAlive)) || !keepAlive) {
            ::close(fd);
            return;
        }
    }
    ::close(fd);
}

} // namespace server
} // namespace qkc
