#ifndef QKC_SERVER_JSON_H
#define QKC_SERVER_JSON_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace qkc {
namespace server {

/**
 * Every way the JSON layer rejects a document or an access: syntax errors,
 * inputs past the JsonLimits caps, and type/range mismatches on read.
 * Derives from std::invalid_argument so the server's bad-request mapping
 * catches parser and accessor failures in one place.
 */
class JsonError : public std::invalid_argument {
  public:
    explicit JsonError(const std::string& what) : std::invalid_argument(what)
    {
    }
};

/** Caps enforced while parsing untrusted documents. */
struct JsonLimits {
    std::size_t maxBytes = 8u << 20; ///< document size, bytes
    std::size_t maxDepth = 64;       ///< array/object nesting depth
    std::size_t maxNodes = 1u << 20; ///< total values in the document
};

/**
 * A minimal JSON document value — all the server's request/response bodies
 * need, with nothing the repo would have to vendor. Objects keep insertion
 * order so serialized responses are deterministic; numbers remember whether
 * they were written as integers, so 64-bit seeds round-trip exactly
 * (doubles alone lose precision past 2^53).
 */
class Json {
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double n) : type_(Type::Number), num_(n) {}
    Json(int n) : Json(static_cast<std::int64_t>(n)) {}
    Json(std::int64_t n)
        : type_(Type::Number), num_(static_cast<double>(n)),
          int_(n < 0 ? 0 : static_cast<std::uint64_t>(n)), isInt_(n >= 0)
    {
    }
    Json(std::uint64_t n)
        : type_(Type::Number), num_(static_cast<double>(n)), int_(n),
          isInt_(true)
    {
    }
    Json(const char* s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array() { return Json(Type::Array); }
    static Json object() { return Json(Type::Object); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed reads; a mismatch throws JsonError naming the expected type. */
    bool asBool() const;
    double asDouble() const;
    /** Requires an exact non-negative integer within uint64 range. */
    std::uint64_t asUInt64() const;
    const std::string& asString() const;

    // -- Arrays --------------------------------------------------------------
    Json& push(Json v);
    std::size_t size() const;
    const Json& at(std::size_t i) const;
    const std::vector<Json>& items() const;

    // -- Objects (insertion-ordered; set on an existing key overwrites) ------
    Json& set(const std::string& key, Json v);
    /** nullptr when the key is absent. */
    const Json* find(const std::string& key) const;
    const std::vector<std::pair<std::string, Json>>& members() const;

    /** Compact single-line serialization (the response-body format). */
    std::string dump() const;

  private:
    explicit Json(Type t) : type_(t) {}
    void expect(Type t, const char* what) const;
    void writeTo(std::string& out) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::uint64_t int_ = 0;
    bool isInt_ = false;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/**
 * Strict JSON parse of a complete document. Any syntax error, trailing
 * garbage, or input past the limits throws JsonError; no input crashes the
 * parser or recurses past the depth cap.
 */
Json parseJson(const std::string& text, const JsonLimits& limits = {});

} // namespace server
} // namespace qkc

#endif // QKC_SERVER_JSON_H
