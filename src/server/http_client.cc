#include "server/http_client.h"

#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace qkc {
namespace server {

namespace {

int
connectTo(const std::string& host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error("httpRequest: socket() failed");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        // Not a dotted quad; resolve it (covers "localhost").
        hostent* he = ::gethostbyname(host.c_str());
        if (!he || he->h_addrtype != AF_INET || !he->h_addr_list[0]) {
            ::close(fd);
            throw std::runtime_error("httpRequest: cannot resolve " + host);
        }
        std::memcpy(&addr.sin_addr, he->h_addr_list[0], sizeof(addr.sin_addr));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw std::runtime_error("httpRequest: cannot connect to " + host +
                                 ":" + std::to_string(port));
    }
    return fd;
}

void
sendAll(int fd, const std::string& data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            ::close(fd);
            throw std::runtime_error("httpRequest: send failed");
        }
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

HttpReply
httpRequest(const std::string& host, std::uint16_t port,
            const std::string& method, const std::string& path,
            const std::string& body)
{
    const int fd = connectTo(host, port);

    std::string request = method + " " + path + " HTTP/1.1\r\n";
    request += "Host: " + host + "\r\n";
    request += "Connection: close\r\n";
    if (!body.empty())
        request += "Content-Type: application/json\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    request += body;
    sendAll(fd, request);

    std::string response;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            response.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            break;
        ::close(fd);
        throw std::runtime_error("httpRequest: recv failed");
    }
    ::close(fd);

    // Parse "HTTP/1.1 <status> ..." and split off the body.
    const std::size_t sp = response.find(' ');
    const std::size_t headerEnd = response.find("\r\n\r\n");
    if (sp == std::string::npos || headerEnd == std::string::npos)
        throw std::runtime_error("httpRequest: malformed response");

    HttpReply reply;
    try {
        reply.status = std::stoi(response.substr(sp + 1, 3));
    } catch (const std::exception&) {
        throw std::runtime_error("httpRequest: malformed status line");
    }
    reply.body = response.substr(headerEnd + 4);
    return reply;
}

} // namespace server
} // namespace qkc
