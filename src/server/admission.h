#ifndef QKC_SERVER_ADMISSION_H
#define QKC_SERVER_ADMISSION_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "circuit/circuit.h"
#include "vqa/simulator_api.h"

namespace qkc {
namespace server {

/**
 * Resource ceilings the server checks BEFORE opening a session — a
 * 40-qubit state-vector request must be refused with a structured error at
 * the front door, not discovered as a std::bad_alloc after 16 TiB of
 * amplitude allocation has begun. The per-backend cost model mirrors what
 * the engines actually allocate: sv holds 16·2^n bytes of amplitudes, dm
 * 16·4^n bytes of density matrix, kc enumerates 2^n exact query terms, and
 * dd/tn are structure-dependent (no closed-form bound, so only the generic
 * caps apply).
 */
struct AdmissionLimits {
    /** Dense-state budget (sv amplitudes, dm density matrix), bytes. */
    std::uint64_t stateMemoryBytes = 4ull << 30;

    /** kc exact-query enumeration budget: refuses exact distribution /
     *  amplitude queries past this qubit count (2^n term evaluations). */
    std::size_t kcMaxExactQubits = 16;

    std::size_t maxShots = 1u << 20;        ///< Sample/Expectation shots
    std::size_t maxAmplitudes = 4096;       ///< Amplitudes bitstring count
    std::size_t maxMarginalQubits = 16;     ///< Probabilities output 2^k cap
    std::size_t maxObservableTerms = 256;   ///< Expectation Pauli terms
    std::size_t maxBindings = 64;           ///< parameter bindings per request
};

/**
 * The structured outcome of an admission check. `field` names the
 * constraint that tripped (e.g. "memory", "shots") so clients can react
 * programmatically; `reason` is the human-readable sentence the error
 * response carries.
 */
struct AdmissionVerdict {
    bool admitted = true;
    std::string field;
    std::string reason;

    static AdmissionVerdict ok() { return {}; }
    static AdmissionVerdict reject(std::string field, std::string reason)
    {
        return {false, std::move(field), std::move(reason)};
    }
};

/**
 * Feasibility check for one request against one backend, consulted before
 * any session is opened or cached. Admission is deliberately conservative
 * in what it models — structure-dependent blowups (dd diagram width, kc
 * compilation size) pass here and are bounded by the engines' own limits —
 * but everything it does model is checked exactly.
 */
AdmissionVerdict admitRequest(const BackendSpec& spec, const Circuit& circuit,
                              const Task& task,
                              const AdmissionLimits& limits);

} // namespace server
} // namespace qkc

#endif // QKC_SERVER_ADMISSION_H
