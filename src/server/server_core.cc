#include "server/server_core.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <variant>

#include "exec/execution_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qkc {
namespace server {

namespace {

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// Counter names must be string literals (the registry keeps the pointer).
obs::Counter&
counterRequests()
{
    static obs::Counter c("server.requests");
    return c;
}
obs::Counter&
counterBadRequest()
{
    static obs::Counter c("server.rejected.badrequest");
    return c;
}
obs::Counter&
counterAdmission()
{
    static obs::Counter c("server.rejected.admission");
    return c;
}
obs::Counter&
counterQueueFull()
{
    static obs::Counter c("server.rejected.queue");
    return c;
}
obs::Counter&
counterDraining()
{
    static obs::Counter c("server.rejected.draining");
    return c;
}
obs::Counter&
counterCacheHit()
{
    static obs::Counter c("server.cache.hit");
    return c;
}
obs::Counter&
counterCacheMiss()
{
    static obs::Counter c("server.cache.miss");
    return c;
}
obs::Histogram&
histQueueWait()
{
    static obs::Histogram h("server.queue.wait.ns");
    return h;
}
obs::Histogram&
histCoalesceWidth()
{
    static obs::Histogram h("server.coalesce.width");
    return h;
}

HttpResult
errorResult(int status, const char* code, const std::string& message,
            const std::string& field = {})
{
    Json err = Json::object();
    err.set("code", code);
    err.set("message", message);
    if (!field.empty())
        err.set("field", field);
    Json body = Json::object();
    body.set("error", std::move(err));
    return {status, body.dump()};
}

/** RAII slot in the bounded in-flight set; admitted() false means 429. */
class InflightGuard {
  public:
    InflightGuard(std::atomic<std::size_t>& inflight, std::size_t bound)
        : inflight_(inflight)
    {
        if (inflight_.fetch_add(1) >= bound) {
            inflight_.fetch_sub(1);
            admitted_ = false;
        }
    }
    ~InflightGuard()
    {
        if (admitted_)
            inflight_.fetch_sub(1);
    }
    InflightGuard(const InflightGuard&) = delete;
    InflightGuard& operator=(const InflightGuard&) = delete;

    bool admitted() const { return admitted_; }

  private:
    std::atomic<std::size_t>& inflight_;
    bool admitted_ = true;
};

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

struct ParsedRequest {
    std::string specString;
    BackendSpec spec;
    std::string taskName;
    Task task;
    std::vector<ParamBinding> bindings;
    std::vector<std::uint64_t> seeds;
    std::string taskSig;
};

std::size_t
asCount(const Json& v, const char* what)
{
    const std::uint64_t n = v.asUInt64();
    if (n > static_cast<std::uint64_t>(~static_cast<std::size_t>(0)))
        throw JsonError(std::string("json: ") + what + " out of range");
    return static_cast<std::size_t>(n);
}

/**
 * A canonical text form of the task, used as the coalescing key: two
 * requests merge into one runBatch only when their tasks are identical,
 * because a batch runs one task against every binding.
 */
std::string
taskSignature(const Task& task)
{
    std::string sig;
    if (const auto* s = std::get_if<Sample>(&task)) {
        sig = "sample:" + std::to_string(s->shots);
    } else if (const auto* e = std::get_if<Expectation>(&task)) {
        sig = "expectation:" + std::to_string(e->shots);
        for (const auto& [coeff, pauli] : e->observable.terms) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", coeff);
            sig += ";";
            sig += buf;
            sig += "*" + pauli.text();
        }
    } else if (const auto* a = std::get_if<Amplitudes>(&task)) {
        sig = "amplitudes:";
        for (std::uint64_t b : a->bitstrings)
            sig += std::to_string(b) + ",";
    } else {
        const auto& p = std::get<Probabilities>(task);
        sig = "probabilities:";
        for (std::size_t q : p.qubits)
            sig += std::to_string(q) + ",";
    }
    return sig;
}

ParsedRequest
parseRequest(const Json& doc, const ServerConfig& config)
{
    if (!doc.isObject())
        throw JsonError("json: request body must be an object");
    static const char* kKnown[] = {"backend",    "qasm",   "task",
                                   "shots",      "seed",   "observable",
                                   "bitstrings", "qubits", "params"};
    for (const auto& [key, value] : doc.members()) {
        (void)value;
        bool known = false;
        for (const char* k : kKnown)
            known = known || key == k;
        if (!known)
            throw JsonError("json: unknown request field \"" + key + "\"");
    }

    ParsedRequest req;

    const Json* backend = doc.find("backend");
    if (!backend)
        throw JsonError("json: missing required field \"backend\"");
    req.specString = backend->asString();
    req.spec = parseBackendSpec(req.specString);

    const Json* qasm = doc.find("qasm");
    if (!qasm)
        throw JsonError("json: missing required field \"qasm\"");
    Circuit circuit = parseQasm(qasm->asString(), config.qasm);

    req.taskName = "sample";
    if (const Json* t = doc.find("task"))
        req.taskName = t->asString();

    if (req.taskName == "sample") {
        Sample s;
        if (const Json* shots = doc.find("shots"))
            s.shots = asCount(*shots, "shots");
        req.task = s;
    } else if (req.taskName == "expectation") {
        Expectation e;
        if (const Json* shots = doc.find("shots"))
            e.shots = asCount(*shots, "shots");
        const Json* obs = doc.find("observable");
        if (!obs)
            throw JsonError(
                "json: expectation requires \"observable\": [[coeff, "
                "\"PAULIS\"], ...]");
        for (const Json& term : obs->items()) {
            if (!term.isArray() || term.size() != 2)
                throw JsonError(
                    "json: each observable term must be [coeff, \"PAULIS\"]");
            e.observable.add(term.at(0).asDouble(),
                             PauliString(term.at(1).asString()));
        }
        req.task = std::move(e);
    } else if (req.taskName == "amplitudes") {
        Amplitudes a;
        const Json* bits = doc.find("bitstrings");
        if (!bits)
            throw JsonError(
                "json: amplitudes requires \"bitstrings\": [index, ...]");
        for (const Json& b : bits->items())
            a.bitstrings.push_back(b.asUInt64());
        req.task = std::move(a);
    } else if (req.taskName == "probabilities") {
        Probabilities p;
        if (const Json* qs = doc.find("qubits"))
            for (const Json& q : qs->items())
                p.qubits.push_back(asCount(q, "qubit"));
        req.task = std::move(p);
    } else {
        throw JsonError("json: unknown task \"" + req.taskName +
                        "\" (expected sample, expectation, amplitudes or "
                        "probabilities)");
    }

    std::uint64_t seed = 0;
    if (const Json* s = doc.find("seed"))
        seed = s->asUInt64();

    // Bindings: without "params", the request is its own single binding;
    // with it, binding i is the circuit with its parameterized-gate angles
    // replaced in program order by params[i]. Binding i draws seed + i, so
    // a client replaying binding i alone reproduces its payload exactly.
    if (const Json* params = doc.find("params")) {
        const std::vector<std::size_t> sites =
            circuit.parameterizedGateIndices();
        for (const Json& row : params->items()) {
            if (!row.isArray() || row.size() != sites.size())
                throw JsonError(
                    "json: each params row must list one angle per "
                    "parameterized gate (" +
                    std::to_string(sites.size()) + " expected)");
            Circuit binding = circuit;
            for (std::size_t i = 0; i < sites.size(); ++i)
                binding.setGateParam(sites[i], row.at(i).asDouble());
            req.bindings.push_back(std::move(binding));
        }
        if (req.bindings.empty())
            throw JsonError("json: \"params\" must not be empty");
        if (req.bindings.size() > config.admission.maxBindings)
            throw JsonError("json: request carries " +
                            std::to_string(req.bindings.size()) +
                            " bindings, more than the limit of " +
                            std::to_string(config.admission.maxBindings));
    } else {
        req.bindings.push_back(std::move(circuit));
    }
    for (std::size_t i = 0; i < req.bindings.size(); ++i)
        req.seeds.push_back(seed + i);

    req.taskSig = taskSignature(req.task);
    return req;
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

Json
renderResult(const Result& r, const std::string& taskName)
{
    Json out = Json::object();
    if (taskName == "sample") {
        Json samples = Json::array();
        for (std::uint64_t s : r.samples)
            samples.push(Json(s));
        out.set("samples", std::move(samples));
    } else if (taskName == "expectation") {
        out.set("expectation", Json(r.expectation));
    } else if (taskName == "amplitudes") {
        Json amps = Json::array();
        for (const Complex& a : r.amplitudes) {
            Json pair = Json::array();
            pair.push(Json(a.real()));
            pair.push(Json(a.imag()));
            amps.push(std::move(pair));
        }
        out.set("amplitudes", std::move(amps));
    } else {
        Json probs = Json::array();
        for (double p : r.probabilities)
            probs.push(Json(p));
        out.set("probabilities", std::move(probs));
    }

    Json meta = Json::object();
    meta.set("seconds", Json(r.meta.seconds));
    meta.set("planBuilds", Json(static_cast<std::uint64_t>(r.meta.planBuilds)));
    meta.set("planReuses", Json(static_cast<std::uint64_t>(r.meta.planReuses)));
    meta.set("exact", Json(r.meta.exact));
    meta.set("trajectories",
             Json(static_cast<std::uint64_t>(r.meta.trajectories)));
    out.set("meta", std::move(meta));
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// ServerCore
// ---------------------------------------------------------------------------

ServerCore::ServerCore(ServerConfig config)
    : config_(config), cache_(config.cacheCapacity, config.maxCoalesce)
{
}

HttpResult
ServerCore::handle(const std::string& method, const std::string& path,
                   const std::string& body)
{
    counterRequests().add();
    try {
        if (path == "/v1/run") {
            if (method != "POST")
                return errorResult(405, "method_not_allowed",
                                   "/v1/run takes POST");
            return runRequest(body);
        }
        if (path == "/v1/backends") {
            if (method != "GET")
                return errorResult(405, "method_not_allowed",
                                   "/v1/backends takes GET");
            return backendsResponse();
        }
        if (path == "/v1/stats") {
            if (method != "GET")
                return errorResult(405, "method_not_allowed",
                                   "/v1/stats takes GET");
            return statsResponse();
        }
        if (path == "/v1/healthz") {
            if (method != "GET")
                return errorResult(405, "method_not_allowed",
                                   "/v1/healthz takes GET");
            return healthzResponse();
        }
        if (path == "/v1/shutdown") {
            if (method != "POST")
                return errorResult(405, "method_not_allowed",
                                   "/v1/shutdown takes POST");
            beginDrain();
            Json out = Json::object();
            out.set("draining", Json(true));
            return {200, out.dump()};
        }
        return errorResult(404, "not_found", "no route for " + path);
    } catch (const std::exception& e) {
        return errorResult(500, "internal", e.what());
    }
}

HttpResult
ServerCore::runRequest(const std::string& body)
{
    QKC_SPAN("server.request");

    if (draining_.load()) {
        counterDraining().add();
        return errorResult(503, "draining",
                           "server is draining; no new work accepted");
    }
    InflightGuard guard(inflight_, config_.maxInflight);
    if (!guard.admitted()) {
        counterQueueFull().add();
        return errorResult(
            429, "overloaded",
            "in-flight request bound of " +
                std::to_string(config_.maxInflight) + " reached; retry");
    }

    ParsedRequest req;
    try {
        req = parseRequest(parseJson(body, config_.json), config_);
    } catch (const std::invalid_argument& e) {
        // JsonError, QasmParseError, bad specs, bad Pauli text.
        counterBadRequest().add();
        return errorResult(400, "bad_request", e.what());
    }

    const AdmissionVerdict verdict = admitRequest(
        req.spec, req.bindings.front(), req.task, config_.admission);
    if (!verdict.admitted) {
        counterAdmission().add();
        return errorResult(422, "infeasible", verdict.reason, verdict.field);
    }

    const std::uint64_t structure = structureHash(req.bindings.front());
    bool hit = false;
    std::shared_ptr<CacheEntry> entry =
        cache_.acquire(req.specString, structure, hit);
    (hit ? counterCacheHit() : counterCacheMiss()).add();

    auto waiter = std::make_shared<Waiter>();
    waiter->bindings = std::move(req.bindings);
    waiter->seeds = std::move(req.seeds);
    waiter->task = req.task;
    waiter->taskSig = std::move(req.taskSig);

    execute(*entry, waiter);

    if (waiter->error) {
        try {
            std::rethrow_exception(waiter->error);
        } catch (const std::invalid_argument& e) {
            // Task/backend mismatches surface at run time (e.g. amplitudes
            // on a noisy dm session) but are still the client's request.
            counterBadRequest().add();
            return errorResult(400, "bad_request", e.what());
        } catch (const std::exception& e) {
            return errorResult(500, "internal", e.what());
        }
    }

    Json out = Json::object();
    out.set("backend", req.spec.name);
    out.set("task", req.taskName);
    out.set("cacheHit", Json(hit));
    out.set("coalesced", Json(static_cast<std::uint64_t>(waiter->batchWidth)));
    out.set("queueWaitNanos", Json(waiter->waitNanos));
    Json results = Json::array();
    for (const Result& r : waiter->results)
        results.push(renderResult(r, req.taskName));
    out.set("results", std::move(results));
    return {200, out.dump()};
}

void
ServerCore::execute(CacheEntry& entry, const std::shared_ptr<Waiter>& w)
{
    std::unique_lock<std::mutex> lock(entry.mu);
    w->enqueuedNanos = nowNanos();
    entry.queue.push_back(w);

    if (entry.running) {
        // A leader is draining the queue; it will run our group and flip
        // done under the entry mutex.
        entry.cv.wait(lock, [&] { return w->done; });
        return;
    }

    entry.running = true;
    while (!entry.queue.empty()) {
        // Gather the front waiter's task-signature group, up to the
        // adaptive width cap. The leader serves the whole queue before
        // releasing `running` — arrivals during a batch coalesce into the
        // next one instead of electing a second leader.
        std::vector<std::shared_ptr<Waiter>> group;
        const std::string sig = entry.queue.front()->taskSig;
        for (auto it = entry.queue.begin();
             it != entry.queue.end() && group.size() < entry.coalesceCap;) {
            if ((*it)->taskSig == sig) {
                group.push_back(*it);
                it = entry.queue.erase(it);
            } else {
                ++it;
            }
        }
        const std::uint64_t serviceStart = nowNanos();
        for (const auto& g : group) {
            g->waitNanos = serviceStart - g->enqueuedNanos;
            histQueueWait().record(g->waitNanos);
        }
        histCoalesceWidth().record(group.size());

        lock.unlock();
        // Session work happens outside the lock: only the thread holding
        // `running` ever touches entry.session or entry.coalesceCap.
        try {
            QKC_SPAN("server.batch");
            if (!entry.session) {
                QKC_SPAN("server.open");
                entry.session = makeBackend(entry.specString)
                                    ->open(group.front()->bindings.front());
            }
            std::vector<ParamBinding> bindings;
            std::vector<std::uint64_t> seeds;
            for (const auto& g : group) {
                bindings.insert(bindings.end(), g->bindings.begin(),
                                g->bindings.end());
                seeds.insert(seeds.end(), g->seeds.begin(), g->seeds.end());
            }
            std::vector<Result> results =
                entry.session->runBatch(bindings, group.front()->task, seeds);

            std::size_t off = 0;
            for (const auto& g : group) {
                const auto first =
                    results.begin() + static_cast<std::ptrdiff_t>(off);
                g->results.assign(
                    first, first + static_cast<std::ptrdiff_t>(
                                       g->bindings.size()));
                off += g->bindings.size();
                g->batchWidth = group.size();
            }

            // Adapt the coalescing width to the measured lane imbalance: a
            // lopsided fan-out means the batch was too wide for the work's
            // variance, an even one means there is headroom to merge more.
            const double imbalance = results.front().meta.batch.imbalance;
            if (imbalance > 1.5 && entry.coalesceCap > 1)
                entry.coalesceCap = (entry.coalesceCap + 1) / 2;
            else if (imbalance > 0.0 && imbalance < 1.2 &&
                     entry.coalesceCap < cache_.maxCoalesce())
                entry.coalesceCap *= 2;
        } catch (...) {
            for (const auto& g : group) {
                g->error = std::current_exception();
                g->batchWidth = group.size();
            }
        }
        lock.lock();
        for (const auto& g : group)
            g->done = true;
        entry.cv.notify_all();
    }
    entry.running = false;
}

HttpResult
ServerCore::backendsResponse() const
{
    Json list = Json::array();
    for (const BackendInfo& info : backendRegistry()) {
        Json b = Json::object();
        b.set("name", info.name);
        Json aliases = Json::array();
        for (const std::string& a : info.aliases)
            aliases.push(Json(a));
        b.set("aliases", std::move(aliases));
        Json options = Json::array();
        for (const std::string& k : info.optionKeys)
            options.push(Json(k));
        b.set("options", std::move(options));
        b.set("summary", info.summary);
        b.set("tasks", info.tasks);
        b.set("batch", info.batch);
        list.push(std::move(b));
    }
    Json out = Json::object();
    out.set("backends", std::move(list));
    return {200, out.dump()};
}

HttpResult
ServerCore::statsResponse() const
{
    Json out = Json::object();
    out.set("draining", Json(draining_.load()));
    out.set("inflight", Json(static_cast<std::uint64_t>(inflight_.load())));

    Json cache = Json::object();
    cache.set("size", Json(static_cast<std::uint64_t>(cache_.size())));
    cache.set("capacity",
              Json(static_cast<std::uint64_t>(cache_.capacity())));
    cache.set("evictions",
              Json(static_cast<std::uint64_t>(cache_.evictions())));
    out.set("cache", std::move(cache));

    // Every server.* metric, straight from the registry snapshot.
    Json metrics = Json::object();
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
    for (const obs::CounterValue& c : snap.counters) {
        const std::string name = c.name;
        if (name.rfind("server.", 0) == 0)
            metrics.set(name, Json(c.value));
    }
    for (const obs::HistogramValue& h : snap.histograms) {
        const std::string name = h.name;
        if (name.rfind("server.", 0) != 0)
            continue;
        Json hist = Json::object();
        hist.set("count", Json(h.count));
        hist.set("sum", Json(h.sum));
        hist.set("mean", Json(h.mean()));
        metrics.set(name, std::move(hist));
    }
    out.set("metrics", std::move(metrics));
    return {200, out.dump()};
}

HttpResult
ServerCore::healthzResponse() const
{
    Json out = Json::object();
    out.set("ok", Json(true));
    out.set("draining", Json(draining_.load()));
    return {200, out.dump()};
}

} // namespace server
} // namespace qkc
