#include "server/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace qkc {
namespace server {

// ---------------------------------------------------------------------------
// Value accessors
// ---------------------------------------------------------------------------

void
Json::expect(Type t, const char* what) const
{
    if (type_ != t)
        throw JsonError(std::string("json: value is not ") + what);
}

bool
Json::asBool() const
{
    expect(Type::Bool, "a boolean");
    return bool_;
}

double
Json::asDouble() const
{
    expect(Type::Number, "a number");
    return num_;
}

std::uint64_t
Json::asUInt64() const
{
    expect(Type::Number, "a number");
    if (isInt_)
        return int_;
    // A double-typed number is accepted only when it is an exact
    // non-negative integer the mantissa actually represents.
    if (!(num_ >= 0.0) || num_ >= 18446744073709551616.0 ||
        std::floor(num_) != num_)
        throw JsonError("json: value is not a non-negative integer");
    return static_cast<std::uint64_t>(num_);
}

const std::string&
Json::asString() const
{
    expect(Type::String, "a string");
    return str_;
}

Json&
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    expect(Type::Array, "an array");
    arr_.push_back(std::move(v));
    return *this;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    throw JsonError("json: value has no size");
}

const Json&
Json::at(std::size_t i) const
{
    expect(Type::Array, "an array");
    if (i >= arr_.size())
        throw JsonError("json: array index out of range");
    return arr_[i];
}

const std::vector<Json>&
Json::items() const
{
    expect(Type::Array, "an array");
    return arr_;
}

Json&
Json::set(const std::string& key, Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    expect(Type::Object, "an object");
    for (auto& [k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

const Json*
Json::find(const std::string& key) const
{
    expect(Type::Object, "an object");
    for (const auto& [k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

const std::vector<std::pair<std::string, Json>>&
Json::members() const
{
    expect(Type::Object, "an object");
    return obj_;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

void
writeEscaped(const std::string& s, std::string& out)
{
    out.push_back('"');
    for (char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

} // namespace

void
Json::writeTo(std::string& out) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number: {
        char buf[32];
        if (isInt_) {
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(int_));
        } else if (!std::isfinite(num_)) {
            // JSON has no inf/nan spelling; null is the least-surprising
            // stand-in for a non-finite metric value.
            std::snprintf(buf, sizeof(buf), "null");
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", num_);
        }
        out += buf;
        break;
      }
      case Type::String:
        writeEscaped(str_, out);
        break;
      case Type::Array: {
        out.push_back('[');
        bool first = true;
        for (const Json& v : arr_) {
            if (!first)
                out.push_back(',');
            first = false;
            v.writeTo(out);
        }
        out.push_back(']');
        break;
      }
      case Type::Object: {
        out.push_back('{');
        bool first = true;
        for (const auto& [k, v] : obj_) {
            if (!first)
                out.push_back(',');
            first = false;
            writeEscaped(k, out);
            out.push_back(':');
            v.writeTo(out);
        }
        out.push_back('}');
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    writeTo(out);
    return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
  public:
    Parser(const std::string& text, const JsonLimits& limits)
        : text_(text), limits_(limits)
    {
    }

    Json parse()
    {
        Json v = value(0);
        skipWs();
        if (pos_ != text_.size())
            throw JsonError("json: trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string& what) const
    {
        throw JsonError("json: " + what + " at byte " +
                        std::to_string(pos_));
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of document");
        return text_[pos_];
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expectLiteral(const char* lit)
    {
        for (const char* p = lit; *p; ++p)
            if (pos_ >= text_.size() || text_[pos_++] != *p)
                fail(std::string("bad literal (expected ") + lit + ")");
    }

    void countNode()
    {
        if (++nodes_ > limits_.maxNodes)
            throw JsonError("json: document exceeds the node limit");
    }

    Json value(std::size_t depth)
    {
        if (depth > limits_.maxDepth)
            throw JsonError("json: document nested too deeply");
        countNode();
        skipWs();
        const char c = peek();
        switch (c) {
          case '{': return object(depth);
          case '[': return array(depth);
          case '"': return Json(string());
          case 't': expectLiteral("true"); return Json(true);
          case 'f': expectLiteral("false"); return Json(false);
          case 'n': expectLiteral("null"); return Json();
          default: return number();
        }
    }

    Json object(std::size_t depth)
    {
        consume('{');
        Json obj = Json::object();
        skipWs();
        if (consume('}'))
            return obj;
        for (;;) {
            skipWs();
            if (peek() != '"')
                fail("expected a string key");
            std::string key = string();
            skipWs();
            if (!consume(':'))
                fail("expected ':'");
            obj.set(key, value(depth + 1));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return obj;
            fail("expected ',' or '}'");
        }
    }

    Json array(std::size_t depth)
    {
        consume('[');
        Json arr = Json::array();
        skipWs();
        if (consume(']'))
            return arr;
        for (;;) {
            arr.push(value(depth + 1));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return arr;
            fail("expected ',' or ']'");
        }
    }

    std::string string()
    {
        consume('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos_ >= text_.size())
                        fail("truncated \\u escape");
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // passed through as two 3-byte sequences — lossy for
                // astral-plane text, lossless for everything the server's
                // ASCII protocol fields actually carry).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Json number()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);

        // Exact unsigned integers keep their 64-bit identity (seeds);
        // everything else becomes a double.
        if (tok.find_first_not_of("0123456789") == std::string::npos &&
            tok.size() <= 20) {
            errno = 0;
            char* end = nullptr;
            const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0')
                return Json(static_cast<std::uint64_t>(v));
        }
        errno = 0;
        char* end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0')
            fail("bad number \"" + tok + "\"");
        if (!std::isfinite(d))
            fail("number out of range \"" + tok + "\"");
        return Json(d);
    }

    const std::string& text_;
    const JsonLimits& limits_;
    std::size_t pos_ = 0;
    std::size_t nodes_ = 0;
};

} // namespace

Json
parseJson(const std::string& text, const JsonLimits& limits)
{
    if (text.size() > limits.maxBytes)
        throw JsonError("json: document exceeds the " +
                        std::to_string(limits.maxBytes) + "-byte limit");
    return Parser(text, limits).parse();
}

} // namespace server
} // namespace qkc
