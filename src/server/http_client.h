#ifndef QKC_SERVER_HTTP_CLIENT_H
#define QKC_SERVER_HTTP_CLIENT_H

#include <cstdint>
#include <string>

namespace qkc {
namespace server {

/** One HTTP exchange as the client saw it. */
struct HttpReply {
    int status = 0;
    std::string body;
};

/**
 * A blocking loopback HTTP/1.1 client — just enough protocol for
 * qkc_client, the throughput bench and the tests to drive qkc_serverd
 * without vendoring a real client library. One connection per call
 * (Connection: close); coalescing tests that need concurrency open many in
 * parallel from their own threads. Throws std::runtime_error on transport
 * failure (connect, send, short response).
 */
HttpReply httpRequest(const std::string& host, std::uint16_t port,
                      const std::string& method, const std::string& path,
                      const std::string& body = {});

/** POST with a JSON body. */
inline HttpReply
httpPost(const std::string& host, std::uint16_t port, const std::string& path,
         const std::string& body)
{
    return httpRequest(host, port, "POST", path, body);
}

/** GET. */
inline HttpReply
httpGet(const std::string& host, std::uint16_t port, const std::string& path)
{
    return httpRequest(host, port, "GET", path);
}

} // namespace server
} // namespace qkc

#endif // QKC_SERVER_HTTP_CLIENT_H
