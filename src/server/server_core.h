#ifndef QKC_SERVER_SERVER_CORE_H
#define QKC_SERVER_SERVER_CORE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "circuit/qasm.h"
#include "server/admission.h"
#include "server/json.h"
#include "server/session_cache.h"
#include "vqa/simulator_api.h"

namespace qkc {
namespace server {

/**
 * One /v1/run request queued on a cache entry. The batch leader that dequeues
 * it flattens its bindings (with their caller-derived seeds) into one
 * runBatch call; because runBatch takes explicit per-binding seeds, the
 * payload this waiter receives is bit-identical whether it ran alone or
 * coalesced with strangers. All fields past `enqueuedNanos` are written by
 * the leader and read by the waiter, synchronized by the entry mutex + cv.
 */
struct Waiter {
    std::vector<ParamBinding> bindings;  ///< this request's parameter bindings
    std::vector<std::uint64_t> seeds;    ///< one seed per binding (seed + i)
    Task task;
    std::string taskSig;        ///< canonical task text; equal sigs coalesce
    std::uint64_t enqueuedNanos = 0;

    std::vector<Result> results;
    bool done = false;
    std::exception_ptr error;
    std::uint64_t waitNanos = 0; ///< enqueue -> service start
    std::size_t batchWidth = 0;  ///< requests coalesced into the serving batch
};

/** Everything the daemon can configure about request handling. */
struct ServerConfig {
    std::size_t cacheCapacity = 8; ///< live sessions (spec x structure pairs)
    std::size_t maxCoalesce = 16;  ///< requests merged into one batch, max
    /**
     * Queued-plus-running /v1/run requests the server accepts before
     * answering 429. Zero rejects every run request — the switch the
     * admission tests flip to exercise the overload path deterministically.
     */
    std::size_t maxInflight = 64;
    AdmissionLimits admission{};
    QasmLimits qasm{};
    JsonLimits json{};
};

/** One HTTP exchange's outcome, transport-agnostic. */
struct HttpResult {
    int status = 200;
    std::string body; ///< always a JSON document
};

/**
 * The transport-independent request handler: JSON bodies in, JSON bodies
 * out, every socket concern left to HttpServer. Thread-safe — the HTTP
 * layer calls handle() from one thread per connection, and the session
 * cache's per-entry leader protocol is what serializes simulator work.
 *
 * Status mapping: 400 malformed request (JSON, QASM, task or spec), 404/405
 * routing, 422 admission rejection (structurally valid but infeasible), 429
 * over the in-flight bound, 503 draining. Every error body carries
 * {"error": {"code", "message"[, "field"]}}.
 */
class ServerCore {
  public:
    explicit ServerCore(ServerConfig config = {});

    ServerCore(const ServerCore&) = delete;
    ServerCore& operator=(const ServerCore&) = delete;

    /** Routes one request. Never throws; failures become error bodies. */
    HttpResult handle(const std::string& method, const std::string& path,
                      const std::string& body);

    /**
     * Stops admitting /v1/run work (503 from now on) while requests already
     * in flight run to completion; read inflight() == 0 for "drained".
     */
    void beginDrain() { draining_.store(true); }
    bool draining() const { return draining_.load(); }

    /** /v1/run requests currently queued or running. */
    std::size_t inflight() const { return inflight_.load(); }

    const ServerConfig& config() const { return config_; }
    SessionCache& cache() { return cache_; }

  private:
    HttpResult runRequest(const std::string& body);
    HttpResult backendsResponse() const;
    HttpResult statsResponse() const;
    HttpResult healthzResponse() const;

    /**
     * The coalescing rendezvous: enqueue `w` on `entry`; become the batch
     * leader if none is running (draining groups of same-task waiters into
     * single runBatch calls until the queue is empty), otherwise wait for a
     * leader to complete `w`.
     */
    void execute(CacheEntry& entry, const std::shared_ptr<Waiter>& w);

    ServerConfig config_;
    SessionCache cache_;
    std::atomic<bool> draining_{false};
    std::atomic<std::size_t> inflight_{0};
};

} // namespace server
} // namespace qkc

#endif // QKC_SERVER_SERVER_CORE_H
