#ifndef QKC_DD_DD_NODE_H
#define QKC_DD_DD_NODE_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "linalg/types.h"

namespace qkc {

/**
 * Node and edge types of the complex-edge-weighted quantum multiple-valued
 * decision diagram (QMDD) package — the JKQ DDSIM simulator family the
 * paper benchmarks against exploits exactly this representation.
 *
 * A state vector (or gate matrix) is a DAG of decision nodes, one level per
 * qubit; qubit 0 — the MOST significant bit of a basis index, matching the
 * Circuit convention — is tested at the root (level 0) and the terminal
 * sits below level n-1. Edges carry complex weights; the value of a basis
 * entry is the product of the edge weights along its path. Structured
 * states (GHZ, stabilizer-like, peaked) share subtrees aggressively, so
 * node counts grow with the state's structure rather than with 2^n.
 *
 * The package keeps diagrams *quasi-reduced*: along any non-zero path every
 * level appears exactly once, and an all-zero subtree is always represented
 * by the canonical zero edge (terminal node, weight 0). Combined with the
 * per-node weight normalization performed by DdPackage, equal
 * sub-vectors/sub-matrices are represented by the same node, which is what
 * the unique table relies on for deduplication.
 */

/** An edge: target node (nullptr = the terminal) plus a complex weight. */
template <typename NodeT>
struct DdEdge {
    NodeT* node = nullptr;
    Complex weight{0.0, 0.0};

    bool isTerminal() const { return node == nullptr; }

    /** The canonical all-zero vector/matrix. */
    bool isZero() const
    {
        return node == nullptr && weight.real() == 0.0 && weight.imag() == 0.0;
    }
};

struct VNode;
struct MNode;

using VEdge = DdEdge<VNode>;
using MEdge = DdEdge<MNode>;

/**
 * Vector-DD node: branches on one qubit; children[b] is the sub-vector for
 * that qubit being |b>. Normalization invariant (established by
 * DdPackage::makeVNode): |w0|^2 + |w1|^2 = 1 and the first non-zero child
 * weight is real non-negative, so outcome probabilities can be read off
 * edge weights directly during sampling.
 *
 * `ref` is the DDSIM-style reference count maintained by
 * DdPackage::incRef/decRef (recursive over child edges; a count of
 * UINT32_MAX is saturated and pins the node forever). `mark` is the
 * generation stamp of the last mark-and-sweep pass that reached this node;
 * `nextFree` chains collected nodes on the package's free list for reuse.
 */
struct VNode {
    std::array<VEdge, 2> children;
    std::size_t level = 0;
    VNode* nextFree = nullptr;
    std::uint32_t ref = 0;
    std::uint32_t mark = 0;
};

/**
 * Matrix-DD node: branches on one qubit's (row bit, column bit) pair;
 * children[2*r + c] is the sub-matrix block. Normalization invariant: the
 * largest-magnitude child weight is exactly 1 (the first such child under
 * the fixed 00,01,10,11 order). Lifecycle fields as in VNode.
 */
struct MNode {
    std::array<MEdge, 4> children;
    std::size_t level = 0;
    MNode* nextFree = nullptr;
    std::uint32_t ref = 0;
    std::uint32_t mark = 0;
};

/**
 * Edge-weight quantization used for compute-table keys (the add cache's
 * weight ratio).
 *
 * The unique tables use the real resolution — canonical interned values
 * from the DDSIM-style ComplexTable (see dd/complex_table.h) — but the add
 * cache keys on an *unbounded* weight ratio, where an absolute-tolerance
 * interning table would grow without limit; a fixed 1e-12 grid is the right
 * trade there. Two ratios that quantize to the same cell are merged (an
 * error far below the library-wide kAmpEps = 1e-9); values past the clamp
 * range below alias each other, so callers must bypass the cache outside
 * the grid's exact range.
 */
inline std::int64_t
ddQuantize(double x)
{
    constexpr double kGrid = 1e12; // cell width 1e-12
    double scaled = x * kGrid;
    // Clamp: keys only need to distinguish values, not represent them.
    if (scaled > 9.2e18)
        return INT64_MAX;
    if (scaled < -9.2e18)
        return INT64_MIN;
    return static_cast<std::int64_t>(scaled >= 0.0 ? scaled + 0.5
                                                   : scaled - 0.5);
}

/** Quantized (re, im) pair for hashing/equality of edge weights. */
struct QuantizedComplex {
    std::int64_t re = 0;
    std::int64_t im = 0;

    bool operator==(const QuantizedComplex& o) const
    {
        return re == o.re && im == o.im;
    }
};

inline QuantizedComplex
ddQuantize(const Complex& w)
{
    return {ddQuantize(w.real()), ddQuantize(w.imag())};
}

/** 64-bit mix for composing hash keys (splitmix64 finalizer). */
inline std::uint64_t
ddHashMix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    return h;
}

} // namespace qkc

#endif // QKC_DD_DD_NODE_H
