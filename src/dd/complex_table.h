#ifndef QKC_DD_COMPLEX_TABLE_H
#define QKC_DD_COMPLEX_TABLE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "linalg/types.h"

namespace qkc {

/**
 * DDSIM-style interning table for edge-weight components.
 *
 * Hash tables need exact keys but floating-point weights need a tolerance.
 * The seed package approximated the standard resolution by snapping each
 * component to a fixed 1e-12 grid, which merges correctly *within* a cell
 * but misses values that straddle a cell boundary. This table implements
 * the real thing: lookup returns the canonical stored representative
 * within kTolerance of the query (checking the neighboring buckets, so
 * boundary straddle cannot cause a miss), inserting the value as the new
 * canonical representative if none exists.
 *
 * Returned pointers are stable for the lifetime of the table (deque
 * storage), so two weights are equal-within-tolerance iff their canonical
 * pointers are equal — exactly what unique-table keys require.
 */
class ComplexTable {
  public:
    /**
     * Merge tolerance. An order of magnitude below the seed's 1e-12 grid
     * and three below the library-wide kAmpEps = 1e-9: snapping a weight to
     * its canonical representative perturbs amplitudes far less than the
     * dedup itself already did.
     */
    static constexpr double kTolerance = 1e-13;

    /** Canonical representative within kTolerance of x (inserts if none). */
    const double* intern(double x);

    /** Number of distinct live components. */
    std::size_t size() const { return liveCount_; }

    /** Storage slots ever allocated (live + free-listed). */
    std::size_t allocated() const { return storage_.size(); }

    /**
     * Garbage-collection hook: drops every entry whose pointer is not in
     * `live`, recycling its storage slot for future interns. Pointers in
     * `live` stay valid and canonical; swept pointers must no longer be
     * referenced anywhere (DdPackage::garbageCollect computes `live` from
     * the surviving unique-table keys, which are the only holders).
     */
    void sweep(const std::unordered_set<const double*>& live);

    /** Drops every entry; previously returned pointers become invalid. */
    void clear();

  private:
    std::deque<double> storage_;
    std::vector<double*> freeSlots_;
    std::size_t liveCount_ = 0;
    std::unordered_map<std::int64_t, std::vector<const double*>> buckets_;
};

/** A complex weight as a pair of canonical component pointers. */
struct InternedComplex {
    const double* re = nullptr;
    const double* im = nullptr;

    bool operator==(const InternedComplex& o) const
    {
        return re == o.re && im == o.im;
    }

    Complex value() const { return Complex(*re, *im); }
};

inline InternedComplex
internComplex(ComplexTable& table, const Complex& w)
{
    return InternedComplex{table.intern(w.real()), table.intern(w.imag())};
}

} // namespace qkc

#endif // QKC_DD_COMPLEX_TABLE_H
