#include "dd/dd_package.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace qkc {

namespace {

/**
 * Magnitudes below this are flushed to exact zero so that destructive
 * interference produces the canonical zero edge instead of a full-depth
 * diagram of ~1e-16 residues. The introduced error is orders of magnitude
 * below the library-wide kAmpEps = 1e-9.
 */
constexpr double kFlushNorm2 = 1e-26;

VEdge
zeroV()
{
    return VEdge{};
}

MEdge
zeroM()
{
    return MEdge{};
}

bool
negligible(const Complex& w)
{
    return norm2(w) < kFlushNorm2;
}

} // namespace

DdPackage::DdPackage(std::size_t numQubits) : numQubits_(numQubits)
{
    if (numQubits == 0)
        throw std::invalid_argument("DdPackage: need at least one qubit");
}

std::size_t
DdPackage::VKeyHash::operator()(const VKey& k) const
{
    // Interned weight components are canonical pointers: equal-within-
    // tolerance weights share the same pointer, so hashing the pointer is
    // exact.
    std::uint64_t h = k.level;
    for (std::size_t i = 0; i < 2; ++i) {
        h = ddHashMix(h, reinterpret_cast<std::uintptr_t>(k.nodes[i]));
        h = ddHashMix(h, reinterpret_cast<std::uintptr_t>(k.weights[i].re));
        h = ddHashMix(h, reinterpret_cast<std::uintptr_t>(k.weights[i].im));
    }
    return static_cast<std::size_t>(h);
}

std::size_t
DdPackage::MKeyHash::operator()(const MKey& k) const
{
    std::uint64_t h = k.level;
    for (std::size_t i = 0; i < 4; ++i) {
        h = ddHashMix(h, reinterpret_cast<std::uintptr_t>(k.nodes[i]));
        h = ddHashMix(h, reinterpret_cast<std::uintptr_t>(k.weights[i].re));
        h = ddHashMix(h, reinterpret_cast<std::uintptr_t>(k.weights[i].im));
    }
    return static_cast<std::size_t>(h);
}

std::size_t
DdPackage::ApplyKeyHash::operator()(const ApplyKey& k) const
{
    std::uint64_t h = ddHashMix(0x517cc1b727220a95ULL,
                                reinterpret_cast<std::uintptr_t>(k.m));
    return static_cast<std::size_t>(
        ddHashMix(h, reinterpret_cast<std::uintptr_t>(k.v)));
}

std::size_t
DdPackage::AddKeyHash::operator()(const AddKey& k) const
{
    std::uint64_t h = ddHashMix(0x2545f4914f6cdd1dULL,
                                reinterpret_cast<std::uintptr_t>(k.a));
    h = ddHashMix(h, reinterpret_cast<std::uintptr_t>(k.b));
    h = ddHashMix(h, static_cast<std::uint64_t>(k.ratio.re));
    return static_cast<std::size_t>(
        ddHashMix(h, static_cast<std::uint64_t>(k.ratio.im)));
}

std::size_t
DdPackage::MmKeyHash::operator()(const MmKey& k) const
{
    std::uint64_t h = ddHashMix(0x9e3779b97f4a7c15ULL,
                                reinterpret_cast<std::uintptr_t>(k.a));
    return static_cast<std::size_t>(
        ddHashMix(h, reinterpret_cast<std::uintptr_t>(k.b)));
}

std::size_t
DdPackage::MAddKeyHash::operator()(const MAddKey& k) const
{
    std::uint64_t h = ddHashMix(0xd6e8feb86659fd93ULL,
                                reinterpret_cast<std::uintptr_t>(k.a));
    h = ddHashMix(h, reinterpret_cast<std::uintptr_t>(k.b));
    h = ddHashMix(h, static_cast<std::uint64_t>(k.ratio.re));
    return static_cast<std::size_t>(
        ddHashMix(h, static_cast<std::uint64_t>(k.ratio.im)));
}

VEdge
DdPackage::makeVNode(std::size_t level, const VEdge& e0, const VEdge& e1)
{
    VEdge c0 = negligible(e0.weight) ? zeroV() : e0;
    VEdge c1 = negligible(e1.weight) ? zeroV() : e1;

    const double n0 = norm2(c0.weight);
    const double n1 = norm2(c1.weight);
    const double total = n0 + n1;
    if (total < kFlushNorm2)
        return zeroV();

    const double mag = std::sqrt(total);
    const Complex lead = n0 > 0.0 ? c0.weight : c1.weight;
    const double leadMag = std::abs(lead);
    const Complex factor = lead * (mag / leadMag);

    c0.weight = c0.weight / factor;
    c1.weight = c1.weight / factor;
    // The leading child weight is real by construction; make it exact.
    if (n0 > 0.0)
        c0.weight = Complex(std::sqrt(n0) / mag, 0.0);
    else
        c1.weight = Complex(std::sqrt(n1) / mag, 0.0);

    // Intern through the complex table and snap the stored weights to their
    // canonical representatives: weights equal within ComplexTable
    // tolerance become *identical*, giving exact keys without the grid
    // quantization's boundary-straddle dedup misses.
    const InternedComplex i0 = internComplex(weights_, c0.weight);
    const InternedComplex i1 = internComplex(weights_, c1.weight);
    c0.weight = i0.value();
    c1.weight = i1.value();

    VKey key{level, {c0.node, c1.node}, {i0, i1}};
    auto it = vUnique_.find(key);
    if (it != vUnique_.end()) {
        ++stats_.vHits;
        return VEdge{it->second, factor};
    }
    VNode* node;
    if (vFree_ != nullptr) {
        node = vFree_;
        vFree_ = node->nextFree;
    } else {
        vArena_.emplace_back();
        node = &vArena_.back();
    }
    *node = VNode{{c0, c1}, level, nullptr, 0, 0};
    vUnique_.emplace(key, node);
    ++stats_.allocatedVNodes;
    ++stats_.liveVNodes;
    notePeak();
    return VEdge{node, factor};
}

MEdge
DdPackage::makeMNode(std::size_t level, const std::array<MEdge, 4>& children)
{
    std::array<MEdge, 4> c = children;
    std::size_t argmax = 4;
    double maxNorm = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        if (negligible(c[i].weight))
            c[i] = zeroM();
        const double n = norm2(c[i].weight);
        if (n > maxNorm) {
            maxNorm = n;
            argmax = i;
        }
    }
    if (argmax == 4)
        return zeroM();

    const Complex factor = c[argmax].weight;
    for (auto& ch : c)
        ch.weight = ch.weight / factor;
    c[argmax].weight = Complex(1.0, 0.0);

    std::array<InternedComplex, 4> iw;
    for (std::size_t i = 0; i < 4; ++i) {
        iw[i] = internComplex(weights_, c[i].weight);
        c[i].weight = iw[i].value();
    }

    MKey key{level, {c[0].node, c[1].node, c[2].node, c[3].node}, iw};
    auto it = mUnique_.find(key);
    if (it != mUnique_.end()) {
        ++stats_.mHits;
        return MEdge{it->second, factor};
    }
    MNode* node;
    if (mFree_ != nullptr) {
        node = mFree_;
        mFree_ = node->nextFree;
    } else {
        mArena_.emplace_back();
        node = &mArena_.back();
    }
    *node = MNode{c, level, nullptr, 0, 0};
    mUnique_.emplace(key, node);
    ++stats_.allocatedMNodes;
    ++stats_.liveMNodes;
    notePeak();
    return MEdge{node, factor};
}

VEdge
DdPackage::makeZeroState()
{
    return makeBasisState(0);
}

VEdge
DdPackage::makeBasisState(std::uint64_t basis)
{
    VEdge e{nullptr, Complex(1.0, 0.0)};
    for (std::size_t l = numQubits_; l-- > 0;) {
        const bool bit = (basis >> (numQubits_ - 1 - l)) & 1u;
        e = bit ? makeVNode(l, zeroV(), e) : makeVNode(l, e, zeroV());
    }
    return e;
}

MEdge
DdPackage::buildGateLevel(const Matrix& u,
                          const std::vector<std::size_t>& qubits,
                          std::size_t level, std::size_t row, std::size_t col)
{
    if (level == numQubits_) {
        const Complex& w = u(row, col);
        return negligible(w) ? zeroM() : MEdge{nullptr, w};
    }

    std::size_t local = qubits.size();
    for (std::size_t j = 0; j < qubits.size(); ++j) {
        if (qubits[j] == level) {
            local = j;
            break;
        }
    }

    if (local == qubits.size()) {
        // Uninvolved qubit: identity block structure.
        MEdge sub = buildGateLevel(u, qubits, level + 1, row, col);
        return makeMNode(level, {sub, zeroM(), zeroM(), sub});
    }

    // qubits[0] is the MSB of the gate's local basis index.
    const std::size_t bitPos = qubits.size() - 1 - local;
    std::array<MEdge, 4> c;
    for (std::size_t rb = 0; rb < 2; ++rb) {
        for (std::size_t cb = 0; cb < 2; ++cb) {
            c[2 * rb + cb] =
                buildGateLevel(u, qubits, level + 1, row | (rb << bitPos),
                               col | (cb << bitPos));
        }
    }
    return makeMNode(level, c);
}

MEdge
DdPackage::makePauliDd(const std::string& paulis)
{
    if (paulis.size() != numQubits_)
        throw std::invalid_argument("DdPackage::makePauliDd: string length "
                                    "does not match the qubit count");
    MEdge e{nullptr, Complex(1.0, 0.0)};
    for (std::size_t l = numQubits_; l-- > 0;) {
        const MEdge sub = e;
        auto scaled = [&](double re, double im) {
            MEdge s = sub;
            s.weight = s.weight * Complex(re, im);
            return s;
        };
        std::array<MEdge, 4> c;
        switch (paulis[l]) {
          case 'I':
            c = {sub, zeroM(), zeroM(), sub};
            break;
          case 'X':
            c = {zeroM(), sub, sub, zeroM()};
            break;
          case 'Y':
            c = {zeroM(), scaled(0.0, -1.0), scaled(0.0, 1.0), zeroM()};
            break;
          case 'Z':
            c = {sub, zeroM(), zeroM(), scaled(-1.0, 0.0)};
            break;
          default:
            throw std::invalid_argument(
                "DdPackage::makePauliDd: factors must be one of I, X, Y, Z");
        }
        e = makeMNode(l, c);
    }
    return e;
}

MEdge
DdPackage::makeGateDd(const Matrix& u, const std::vector<std::size_t>& qubits)
{
    const std::size_t dim = std::size_t{1} << qubits.size();
    if (u.rows() != dim || u.cols() != dim)
        throw std::invalid_argument("DdPackage::makeGateDd: matrix/qubit "
                                    "arity mismatch");
    for (std::size_t q : qubits) {
        if (q >= numQubits_)
            throw std::invalid_argument("DdPackage::makeGateDd: qubit index "
                                        "out of range");
    }
    return buildGateLevel(u, qubits, 0, 0, 0);
}

VEdge
DdPackage::addNodes(VNode* a, VNode* b, const Complex& ratio)
{
    // Ratios beyond the quantization grid's exact range would alias under
    // ddQuantize's clamp and could serve a memoized result for a genuinely
    // different ratio — skip the cache for those (rare) calls.
    const bool cacheable = std::abs(ratio.real()) <= 1e6 &&
                           std::abs(ratio.imag()) <= 1e6;
    AddKey key{a, b, ddQuantize(ratio)};
    if (cacheable) {
        auto it = addCache_.find(key);
        if (it != addCache_.end()) {
            ++stats_.addHits;
            return it->second;
        }
    }
    ++stats_.addMisses;

    std::array<VEdge, 2> c;
    for (std::size_t i = 0; i < 2; ++i) {
        const VEdge& ca = a->children[i];
        VEdge cb = b->children[i];
        cb.weight = cb.weight * ratio;
        c[i] = add(ca, cb);
    }
    VEdge result = makeVNode(a->level, c[0], c[1]);
    if (cacheable)
        addCache_.emplace(key, result);
    return result;
}

VEdge
DdPackage::add(const VEdge& a, const VEdge& b)
{
    if (a.isZero() || negligible(a.weight))
        return negligible(b.weight) ? zeroV() : b;
    if (b.isZero() || negligible(b.weight))
        return a;

    if (a.node == b.node) {
        // Identical subtrees (or both terminal): weights add directly.
        const Complex w = a.weight + b.weight;
        return negligible(w) ? zeroV() : VEdge{a.node, w};
    }
    if (a.isTerminal() || b.isTerminal()) {
        throw std::logic_error("DdPackage::add: misaligned diagram levels");
    }
    if (a.node->level != b.node->level) {
        throw std::logic_error("DdPackage::add: misaligned diagram levels");
    }

    // Factor out a's weight so the memo key depends only on the node pair
    // and the relative weight of b.
    const Complex ratio = b.weight / a.weight;
    VEdge r = addNodes(a.node, b.node, ratio);
    r.weight = r.weight * a.weight;
    return negligible(r.weight) ? zeroV() : r;
}

VEdge
DdPackage::apply(const MEdge& m, const VEdge& v)
{
    if (m.isZero() || v.isZero() || negligible(m.weight) ||
        negligible(v.weight)) {
        return zeroV();
    }

    const Complex w = m.weight * v.weight;
    if (m.isTerminal() && v.isTerminal())
        return VEdge{nullptr, w};
    if (m.isTerminal() || v.isTerminal())
        throw std::logic_error("DdPackage::apply: misaligned diagram levels");

    ApplyKey key{m.node, v.node};
    auto it = applyCache_.find(key);
    if (it != applyCache_.end()) {
        ++stats_.applyHits;
        VEdge r = it->second;
        r.weight = r.weight * w;
        return negligible(r.weight) ? zeroV() : r;
    }
    ++stats_.applyMisses;

    std::array<VEdge, 2> rows;
    for (std::size_t rb = 0; rb < 2; ++rb) {
        VEdge t0 = apply(m.node->children[2 * rb + 0], v.node->children[0]);
        VEdge t1 = apply(m.node->children[2 * rb + 1], v.node->children[1]);
        rows[rb] = add(t0, t1);
    }
    VEdge result = makeVNode(m.node->level, rows[0], rows[1]);
    applyCache_.emplace(key, result);
    result.weight = result.weight * w;
    return negligible(result.weight) ? zeroV() : result;
}

MEdge
DdPackage::addMNodes(MNode* a, MNode* b, const Complex& ratio)
{
    // Same grid-aliasing guard as the vector addNodes: ratios outside the
    // quantizer's exact range skip the memo.
    const bool cacheable = std::abs(ratio.real()) <= 1e6 &&
                           std::abs(ratio.imag()) <= 1e6;
    MAddKey key{a, b, ddQuantize(ratio)};
    if (cacheable) {
        auto it = mAddCache_.find(key);
        if (it != mAddCache_.end()) {
            ++stats_.mAddHits;
            return it->second;
        }
    }
    ++stats_.mAddMisses;

    std::array<MEdge, 4> c;
    for (std::size_t i = 0; i < 4; ++i) {
        const MEdge& ca = a->children[i];
        MEdge cb = b->children[i];
        cb.weight = cb.weight * ratio;
        c[i] = addM(ca, cb);
    }
    MEdge result = makeMNode(a->level, c);
    if (cacheable)
        mAddCache_.emplace(key, result);
    return result;
}

MEdge
DdPackage::addM(const MEdge& a, const MEdge& b)
{
    if (a.isZero() || negligible(a.weight))
        return negligible(b.weight) ? zeroM() : b;
    if (b.isZero() || negligible(b.weight))
        return a;

    if (a.node == b.node) {
        const Complex w = a.weight + b.weight;
        return negligible(w) ? zeroM() : MEdge{a.node, w};
    }
    if (a.isTerminal() || b.isTerminal() ||
        a.node->level != b.node->level) {
        throw std::logic_error("DdPackage::addM: misaligned diagram levels");
    }

    const Complex ratio = b.weight / a.weight;
    MEdge r = addMNodes(a.node, b.node, ratio);
    r.weight = r.weight * a.weight;
    return negligible(r.weight) ? zeroM() : r;
}

MEdge
DdPackage::multiplyMM(const MEdge& a, const MEdge& b)
{
    if (a.isZero() || b.isZero() || negligible(a.weight) ||
        negligible(b.weight)) {
        return zeroM();
    }

    const Complex w = a.weight * b.weight;
    if (a.isTerminal() && b.isTerminal())
        return MEdge{nullptr, w};
    if (a.isTerminal() || b.isTerminal() ||
        a.node->level != b.node->level) {
        throw std::logic_error(
            "DdPackage::multiplyMM: misaligned diagram levels");
    }

    MmKey key{a.node, b.node};
    auto it = mmCache_.find(key);
    if (it != mmCache_.end()) {
        ++stats_.mmHits;
        MEdge r = it->second;
        r.weight = r.weight * w;
        return negligible(r.weight) ? zeroM() : r;
    }
    ++stats_.mmMisses;

    // Block 2x2 product over the children: out[r][c] = sum_k a[r][k]*b[k][c]
    // (children indexed 2*row + col).
    std::array<MEdge, 4> out;
    for (std::size_t rb = 0; rb < 2; ++rb) {
        for (std::size_t cb = 0; cb < 2; ++cb) {
            MEdge t0 = multiplyMM(a.node->children[2 * rb + 0],
                                  b.node->children[0 + cb]);
            MEdge t1 = multiplyMM(a.node->children[2 * rb + 1],
                                  b.node->children[2 + cb]);
            out[2 * rb + cb] = addM(t0, t1);
        }
    }
    MEdge result = makeMNode(a.node->level, out);
    mmCache_.emplace(key, result);
    result.weight = result.weight * w;
    return negligible(result.weight) ? zeroM() : result;
}

Complex
DdPackage::amplitude(const VEdge& state, std::uint64_t basis) const
{
    Complex a = state.weight;
    const VNode* node = state.node;
    for (std::size_t l = 0; l < numQubits_; ++l) {
        if (node == nullptr)
            return Complex(0.0, 0.0); // zero edge above the terminal
        const bool bit = (basis >> (numQubits_ - 1 - l)) & 1u;
        const VEdge& child = node->children[bit];
        a *= child.weight;
        node = child.node;
    }
    return a;
}

double
DdPackage::normSquared(const VEdge& state) const
{
    return norm2(state.weight);
}

namespace {

struct IpKey {
    const VNode* a;
    const VNode* b;
    bool operator==(const IpKey& o) const { return a == o.a && b == o.b; }
};

struct IpKeyHash {
    std::size_t operator()(const IpKey& k) const
    {
        const std::size_t ha = std::hash<const void*>()(k.a);
        const std::size_t hb = std::hash<const void*>()(k.b);
        return ha ^ (hb * 0x9e3779b97f4a7c15ULL);
    }
};

/** Node-to-node inner product, both subtrees' root weights excluded. */
Complex
innerProductNodes(const VNode* a, const VNode* b,
                  std::unordered_map<IpKey, Complex, IpKeyHash>& memo)
{
    if (a == nullptr || b == nullptr)
        return Complex(1.0, 0.0); // both terminal (zero edges never recurse)
    const IpKey key{a, b};
    if (auto it = memo.find(key); it != memo.end())
        return it->second;
    Complex acc(0.0, 0.0);
    for (int c = 0; c < 2; ++c) {
        const VEdge& ea = a->children[c];
        const VEdge& eb = b->children[c];
        if (ea.isZero() || eb.isZero())
            continue;
        acc += std::conj(ea.weight) * eb.weight *
               innerProductNodes(ea.node, eb.node, memo);
    }
    memo.emplace(key, acc);
    return acc;
}

} // namespace

Complex
DdPackage::innerProduct(const VEdge& a, const VEdge& b) const
{
    if (a.isZero() || b.isZero())
        return Complex(0.0, 0.0);
    std::unordered_map<IpKey, Complex, IpKeyHash> memo;
    return std::conj(a.weight) * b.weight *
           innerProductNodes(a.node, b.node, memo);
}

VEdge
DdPackage::normalized(const VEdge& state) const
{
    const double n2 = norm2(state.weight);
    if (n2 <= 0.0)
        throw std::invalid_argument("DdPackage::normalized: zero state");
    VEdge e = state;
    e.weight = e.weight / std::sqrt(n2);
    return e;
}

std::vector<double>
DdPackage::probabilities(const VEdge& state) const
{
    if (numQubits_ > 30)
        throw std::invalid_argument("DdPackage::probabilities: state too "
                                    "large to enumerate");
    std::vector<double> probs(std::size_t{1} << numQubits_);
    for (std::uint64_t x = 0; x < probs.size(); ++x)
        probs[x] = norm2(amplitude(state, x));
    return probs;
}

std::uint64_t
DdPackage::sampleOutcome(const VEdge& state, Rng& rng) const
{
    if (state.isZero())
        throw std::invalid_argument("DdPackage::sampleOutcome: zero state");
    std::uint64_t outcome = 0;
    const VNode* node = state.node;
    for (std::size_t l = 0; l < numQubits_; ++l) {
        if (node == nullptr)
            throw std::logic_error("DdPackage::sampleOutcome: truncated "
                                   "diagram");
        const double p0 = norm2(node->children[0].weight);
        const double p1 = norm2(node->children[1].weight);
        const bool bit = rng.uniform() * (p0 + p1) >= p0;
        outcome |= static_cast<std::uint64_t>(bit)
                   << (numQubits_ - 1 - node->level);
        node = node->children[bit].node;
    }
    return outcome;
}

void
DdPackage::countNodes(const VNode* node,
                      std::unordered_set<const VNode*>& seen) const
{
    if (node == nullptr || !seen.insert(node).second)
        return;
    countNodes(node->children[0].node, seen);
    countNodes(node->children[1].node, seen);
}

std::size_t
DdPackage::nodeCount(const VEdge& state) const
{
    std::unordered_set<const VNode*> seen;
    countNodes(state.node, seen);
    return seen.size();
}

namespace {

void
countMNodes(const MNode* node, std::unordered_set<const MNode*>& seen)
{
    if (node == nullptr || !seen.insert(node).second)
        return;
    for (const MEdge& c : node->children)
        countMNodes(c.node, seen);
}

} // namespace

std::size_t
DdPackage::nodeCount(const MEdge& op) const
{
    std::unordered_set<const MNode*> seen;
    countMNodes(op.node, seen);
    return seen.size();
}

// ---------------------------------------------------------------------------
// Memory lifecycle
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kRefSaturated =
    std::numeric_limits<std::uint32_t>::max();

/** Removes one root entry matching `node` (registration is per-protect). */
template <typename EdgeT, typename NodeT>
void
dropRoot(std::vector<EdgeT>& roots, const NodeT* node, const char* what)
{
    auto it = std::find_if(roots.begin(), roots.end(),
                           [&](const EdgeT& r) { return r.node == node; });
    if (it == roots.end())
        throw std::logic_error(std::string("DdPackage::unprotect: ") + what +
                               " edge was not protected");
    roots.erase(it);
}

} // namespace

void
DdPackage::setGc(bool enabled, std::size_t threshold)
{
    if (threshold == 0)
        throw std::invalid_argument("DdPackage::setGc: threshold must be "
                                    ">= 1 node");
    gcEnabled_ = enabled;
    gcThreshold_ = threshold;
}

void
DdPackage::incRef(const VEdge& e)
{
    VNode* n = e.node;
    if (n == nullptr || n->ref == kRefSaturated)
        return;
    if (n->ref++ == 0) {
        incRef(n->children[0]);
        incRef(n->children[1]);
    }
}

void
DdPackage::decRef(const VEdge& e)
{
    VNode* n = e.node;
    if (n == nullptr || n->ref == kRefSaturated)
        return;
    if (n->ref == 0)
        throw std::logic_error("DdPackage::decRef: vector node has no "
                               "references");
    if (--n->ref == 0) {
        decRef(n->children[0]);
        decRef(n->children[1]);
    }
}

void
DdPackage::incRef(const MEdge& e)
{
    MNode* n = e.node;
    if (n == nullptr || n->ref == kRefSaturated)
        return;
    if (n->ref++ == 0)
        for (const MEdge& c : n->children)
            incRef(c);
}

void
DdPackage::decRef(const MEdge& e)
{
    MNode* n = e.node;
    if (n == nullptr || n->ref == kRefSaturated)
        return;
    if (n->ref == 0)
        throw std::logic_error("DdPackage::decRef: matrix node has no "
                               "references");
    if (--n->ref == 0)
        for (const MEdge& c : n->children)
            decRef(c);
}

void
DdPackage::protect(const VEdge& e)
{
    incRef(e);
    if (e.node != nullptr)
        vRoots_.push_back(e);
}

void
DdPackage::unprotect(const VEdge& e)
{
    if (e.node == nullptr)
        return;
    dropRoot(vRoots_, e.node, "vector");
    decRef(e);
}

void
DdPackage::protect(const MEdge& e)
{
    incRef(e);
    if (e.node != nullptr)
        mRoots_.push_back(e);
}

void
DdPackage::unprotect(const MEdge& e)
{
    if (e.node == nullptr)
        return;
    dropRoot(mRoots_, e.node, "matrix");
    decRef(e);
}

void
DdPackage::markV(VNode* node)
{
    if (node == nullptr || node->mark == gcGeneration_)
        return;
    node->mark = gcGeneration_;
    markV(node->children[0].node);
    markV(node->children[1].node);
}

void
DdPackage::markM(MNode* node)
{
    if (node == nullptr || node->mark == gcGeneration_)
        return;
    node->mark = gcGeneration_;
    for (const MEdge& c : node->children)
        markM(c.node);
}

std::size_t
DdPackage::garbageCollect()
{
    // The pause shows up as a span (nested under dd.build / dd.trimBatchLane
    // in traces) and feeds the pause-duration histogram; gcNanos accumulates
    // the same interval so DdMemoryStats can report it without obs on.
    QKC_SPAN("dd.gc");
    const std::uint64_t gcStart = qkc::obs::nowNs();
    // Mark: everything reachable from a protected root or a node some
    // caller still references. Reference counts are recursive, so marking
    // each ref > 0 table entry (plus its descendants, which covers
    // saturated counts) is exactly the live set.
    ++gcGeneration_;
    for (const VEdge& r : vRoots_)
        markV(r.node);
    for (const MEdge& r : mRoots_)
        markM(r.node);
    for (const auto& [key, node] : vUnique_) {
        (void)key;
        if (node->ref > 0)
            markV(node);
    }
    for (const auto& [key, node] : mUnique_) {
        (void)key;
        if (node->ref > 0)
            markM(node);
    }

    // Sweep: evict dead unique-table entries onto the free lists. The
    // compute tables key on raw node pointers — a recycled address would
    // serve a stale result — so they are dropped wholesale.
    std::size_t collected = 0;
    for (auto it = vUnique_.begin(); it != vUnique_.end();) {
        VNode* node = it->second;
        if (node->mark != gcGeneration_) {
            it = vUnique_.erase(it);
            node->nextFree = vFree_;
            vFree_ = node;
            --stats_.liveVNodes;
            ++collected;
        } else {
            ++it;
        }
    }
    for (auto it = mUnique_.begin(); it != mUnique_.end();) {
        MNode* node = it->second;
        if (node->mark != gcGeneration_) {
            it = mUnique_.erase(it);
            node->nextFree = mFree_;
            mFree_ = node;
            --stats_.liveMNodes;
            ++collected;
        } else {
            ++it;
        }
    }
    clearComputeTables();

    // Surviving unique-table keys are the only holders of interned weight
    // pointers (nodes store snapped values); sweep the rest.
    std::unordered_set<const double*> liveWeights;
    for (const auto& [key, node] : vUnique_) {
        (void)node;
        for (const InternedComplex& w : key.weights) {
            liveWeights.insert(w.re);
            liveWeights.insert(w.im);
        }
    }
    for (const auto& [key, node] : mUnique_) {
        (void)node;
        for (const InternedComplex& w : key.weights) {
            liveWeights.insert(w.re);
            liveWeights.insert(w.im);
        }
    }
    weights_.sweep(liveWeights);

    ++stats_.gcRuns;
    stats_.nodesCollected += collected;
    const std::uint64_t pause = qkc::obs::nowNs() - gcStart;
    stats_.gcNanos += pause;
    static qkc::obs::Histogram gcPause("dd.gc.pauseNs");
    gcPause.record(pause);
    static qkc::obs::Counter gcCollected("dd.gc.nodesCollected");
    gcCollected.add(collected);
    return collected;
}

bool
DdPackage::maybeGarbageCollect()
{
    if (!gcEnabled_ ||
        stats_.liveVNodes + stats_.liveMNodes < gcThreshold_)
        return false;
    garbageCollect();
    // Anti-thrash: when the table was mostly live, the working set has
    // outgrown the trigger — raise it so the next sweep waits for a
    // comparable amount of new garbage.
    const std::size_t live = stats_.liveVNodes + stats_.liveMNodes;
    if (live * 2 > gcThreshold_)
        gcThreshold_ = live * 2;
    return true;
}

void
DdPackage::notePeak()
{
    stats_.peakLiveNodes = std::max(stats_.peakLiveNodes,
                                    stats_.liveVNodes + stats_.liveMNodes);
}

void
DdPackage::clearComputeTables()
{
    applyCache_.clear();
    addCache_.clear();
    mmCache_.clear();
    mAddCache_.clear();
}

void
DdPackage::reset()
{
    clearComputeTables();
    vUnique_.clear();
    mUnique_.clear();
    vArena_.clear();
    mArena_.clear();
    vFree_ = nullptr;
    mFree_ = nullptr;
    vRoots_.clear();
    mRoots_.clear();
    weights_.clear();
    stats_ = DdStats{};
}

} // namespace qkc
