#ifndef QKC_DD_DD_PACKAGE_H
#define QKC_DD_DD_PACKAGE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dd/complex_table.h"
#include "dd/dd_node.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace qkc {

/** Operation counters exposed for tests and the compile-metrics CLI. */
struct DdStats {
    std::size_t liveVNodes = 0;      ///< vector nodes currently in the unique table
    std::size_t liveMNodes = 0;      ///< matrix nodes currently in the unique table
    std::size_t allocatedVNodes = 0; ///< lifetime vector-node constructions (free-list reuses included)
    std::size_t allocatedMNodes = 0; ///< lifetime matrix-node constructions
    std::size_t peakLiveNodes = 0;   ///< max of liveVNodes + liveMNodes ever reached
    std::size_t gcRuns = 0;          ///< completed garbageCollect() sweeps
    std::size_t nodesCollected = 0;  ///< unique-table evictions across all sweeps
    std::size_t vHits = 0;           ///< vector unique-table hits (dedups)
    std::size_t mHits = 0;           ///< matrix unique-table hits (dedups)
    std::size_t applyHits = 0;       ///< matrix-vector compute-table hits
    std::size_t applyMisses = 0;
    std::size_t addHits = 0;         ///< vector-add compute-table hits
    std::size_t addMisses = 0;
    std::size_t mmHits = 0;          ///< matrix-matrix compute-table hits
    std::size_t mmMisses = 0;
    std::size_t mAddHits = 0;        ///< matrix-add compute-table hits
    std::size_t mAddMisses = 0;
    std::uint64_t gcNanos = 0;       ///< total garbageCollect() pause time
};

/**
 * The QMDD package: owns every node, keeps the unique tables that give
 * canonical (maximally shared) diagrams, and memoizes the two recursive
 * operations — vector addition and matrix-vector application — in compute
 * tables.
 *
 * Lifetime model: nodes live in an arena owned by the package and are
 * recycled by a reference-counted mark-and-sweep garbage collector.
 * Callers holding an edge across package operations keep it alive either
 * by protect()/unprotect() (root registration — what sessions use for
 * their state and cached gate DDs) or by incRef()/decRef() (recursive
 * reference counts walking child edges). garbageCollect() marks everything
 * reachable from a protected root or a referenced node, evicts the rest
 * from the unique tables onto per-arena free lists for reuse, invalidates
 * the apply/add compute tables (they key on raw node pointers), and sweeps
 * ComplexTable weights no surviving unique-table key references.
 *
 * Collection only runs inside garbageCollect()/maybeGarbageCollect() —
 * never spontaneously mid-operation — so unprotected intermediate edges
 * are safe within a call chain; callers trigger maybeGarbageCollect() at
 * safe points (between trajectories, between parameter binds). The
 * threshold trigger fires once liveVNodes + liveMNodes reaches
 * gcThreshold(), and after a sweep the threshold grows to twice the
 * surviving live count when most of the table was genuinely live, so a
 * large working set cannot thrash the collector.
 */
class DdPackage {
  public:
    /** Default maybeGarbageCollect() trigger: live nodes before a sweep. */
    static constexpr std::size_t kDefaultGcThreshold = 1u << 16;

    explicit DdPackage(std::size_t numQubits);

    std::size_t numQubits() const { return numQubits_; }

    // -- Memory lifecycle ----------------------------------------------------

    /** Enables/disables the threshold trigger and sets its node count. */
    void setGc(bool enabled, std::size_t threshold = kDefaultGcThreshold);

    bool gcEnabled() const { return gcEnabled_; }
    std::size_t gcThreshold() const { return gcThreshold_; }

    /**
     * Recursive reference counting: a 0 -> 1 transition increments every
     * child edge (and so on down), 1 -> 0 symmetrically. A saturated count
     * (UINT32_MAX) pins the node for the package lifetime.
     */
    void incRef(const VEdge& e);
    void decRef(const VEdge& e);
    void incRef(const MEdge& e);
    void decRef(const MEdge& e);

    /**
     * Root registration for session-held edges: a protected edge (and its
     * descendants) survives every sweep until unprotected. Protecting an
     * edge twice requires two unprotects; unprotect of an unregistered
     * edge throws std::logic_error.
     */
    void protect(const VEdge& e);
    void unprotect(const VEdge& e);
    void protect(const MEdge& e);
    void unprotect(const MEdge& e);

    /** Registered (still-protected) roots, both kinds. */
    std::size_t protectedRootCount() const
    {
        return vRoots_.size() + mRoots_.size();
    }

    /**
     * Mark-and-sweep collection (runs regardless of the enabled flag):
     * marks from protected roots and referenced nodes, evicts dead unique-
     * table entries onto the free lists, drops both compute tables and
     * sweeps unreferenced interned weights. Returns nodes collected.
     * Only call at safe points — any unprotected, unreferenced edge held
     * by a caller dangles afterwards.
     */
    std::size_t garbageCollect();

    /** Runs garbageCollect() iff enabled and past the threshold. */
    bool maybeGarbageCollect();

    // -- Construction --------------------------------------------------------

    /** The all-zeros computational basis state |00...0>. */
    VEdge makeZeroState();

    /** An arbitrary computational basis state (qubit 0 = MSB of `basis`). */
    VEdge makeBasisState(std::uint64_t basis);

    /**
     * Lowers a 2^k x 2^k gate (or Kraus) matrix acting on `qubits` —
     * qubits[0] the most significant bit of the matrix's local basis index,
     * exactly the Gate::unitary() convention — into a full n-qubit matrix
     * DD, with identity structure on uninvolved levels. Zero matrix entries
     * never allocate nodes, so sparse gates stay sparse.
     */
    MEdge makeGateDd(const Matrix& u, const std::vector<std::size_t>& qubits);

    /**
     * The matrix DD of an n-qubit Pauli string ("IXYZ..."), one character
     * per qubit (index 0 = qubit 0). Product operators chain one node per
     * level, so the diagram is linear in qubits regardless of how many
     * factors are non-identity — one apply() with this beats one apply()
     * per non-identity qubit on both passes and compute-table traffic.
     */
    MEdge makePauliDd(const std::string& paulis);

    // -- Normalizing constructors (exposed for the invariant tests) ----------

    /**
     * Canonical vector node: children weights are rescaled so that
     * |w0|^2 + |w1|^2 = 1 with the first non-zero weight real >= 0, the
     * factored-out weight moves to the returned edge, and the node is
     * deduplicated through the unique table. All-zero children collapse to
     * the zero edge.
     */
    VEdge makeVNode(std::size_t level, const VEdge& e0, const VEdge& e1);

    /**
     * Canonical matrix node: weights are divided by the largest-magnitude
     * child weight (first among equals), which becomes exactly 1.
     */
    MEdge makeMNode(std::size_t level, const std::array<MEdge, 4>& children);

    // -- Operations -----------------------------------------------------------

    /** Element-wise sum a + b (memoized). */
    VEdge add(const VEdge& a, const VEdge& b);

    /** Matrix-vector product m * v (memoized) — one gate application. */
    VEdge apply(const MEdge& m, const VEdge& v);

    /** Element-wise matrix sum a + b (memoized; multiplyMM's reduction). */
    MEdge addM(const MEdge& a, const MEdge& b);

    /**
     * Matrix-matrix product a * b (memoized in its own compute table) —
     * `a` is the operator applied *after* `b`, so a path MM node with
     * earlier subtree E and later subtree L evaluates multiplyMM(L, E).
     * The result is a canonical matrix DD: a whole channel-free layer can
     * be fused into one operator and applied with a single apply() sweep.
     * Like apply(), the memo key is the node pair with both root weights
     * factored out, and the cached entry is GC-safe because
     * clearComputeTables() drops this table alongside the others.
     */
    MEdge multiplyMM(const MEdge& a, const MEdge& b);

    // -- Queries --------------------------------------------------------------

    /** Amplitude of one basis state: the product of weights along its path. */
    Complex amplitude(const VEdge& state, std::uint64_t basis) const;

    /**
     * Squared 2-norm of the represented vector. Thanks to the per-node
     * normalization invariant this is just |root weight|^2.
     */
    double normSquared(const VEdge& state) const;

    /**
     * <a|b> = sum_x conj(a_x) b_x by a simultaneous memoized walk of both
     * diagrams — cost is the product of live node-pair counts, not 2^n.
     * Combined with apply(), this serves native Pauli expectation values:
     * <psi|P|psi> = innerProduct(psi, apply(P_dd, psi)).
     */
    Complex innerProduct(const VEdge& a, const VEdge& b) const;

    /** Rescales the root weight to unit magnitude (phase preserved). */
    VEdge normalized(const VEdge& state) const;

    /** All 2^n outcome probabilities (small n; used by tests and the CLI). */
    std::vector<double> probabilities(const VEdge& state) const;

    /**
     * Draws one measurement outcome by walking the diagram root-to-terminal:
     * at each node the branch probabilities are the squared child weights
     * (the normalization invariant makes them sum to 1), so a sample costs
     * O(n) independent of the state's density.
     */
    std::uint64_t sampleOutcome(const VEdge& state, Rng& rng) const;

    /** Number of distinct nodes reachable from `state` (terminal excluded). */
    std::size_t nodeCount(const VEdge& state) const;

    /** Number of distinct matrix nodes reachable from `op`. */
    std::size_t nodeCount(const MEdge& op) const;

    const DdStats& stats() const { return stats_; }

    /** Distinct weight components interned in the complex table. */
    std::size_t internedWeightCount() const { return weights_.size(); }

    /** Drops compute-table memo entries (unique tables and nodes survive). */
    void clearComputeTables();

    /** Frees every node and table; previously returned edges become invalid. */
    void reset();

  private:
    struct VKey {
        std::size_t level;
        std::array<VNode*, 2> nodes;
        std::array<InternedComplex, 2> weights;
        bool operator==(const VKey& o) const
        {
            return level == o.level && nodes == o.nodes && weights == o.weights;
        }
    };
    struct MKey {
        std::size_t level;
        std::array<MNode*, 4> nodes;
        std::array<InternedComplex, 4> weights;
        bool operator==(const MKey& o) const
        {
            return level == o.level && nodes == o.nodes && weights == o.weights;
        }
    };
    struct VKeyHash {
        std::size_t operator()(const VKey& k) const;
    };
    struct MKeyHash {
        std::size_t operator()(const MKey& k) const;
    };
    struct ApplyKey {
        const MNode* m;
        const VNode* v;
        bool operator==(const ApplyKey& o) const
        {
            return m == o.m && v == o.v;
        }
    };
    struct ApplyKeyHash {
        std::size_t operator()(const ApplyKey& k) const;
    };
    struct AddKey {
        const VNode* a;
        const VNode* b;
        QuantizedComplex ratio; ///< b's weight relative to a's (factored out)
        bool operator==(const AddKey& o) const
        {
            return a == o.a && b == o.b && ratio == o.ratio;
        }
    };
    struct AddKeyHash {
        std::size_t operator()(const AddKey& k) const;
    };
    struct MmKey {
        const MNode* a;
        const MNode* b;
        bool operator==(const MmKey& o) const
        {
            return a == o.a && b == o.b;
        }
    };
    struct MmKeyHash {
        std::size_t operator()(const MmKey& k) const;
    };
    struct MAddKey {
        const MNode* a;
        const MNode* b;
        QuantizedComplex ratio; ///< b's weight relative to a's (factored out)
        bool operator==(const MAddKey& o) const
        {
            return a == o.a && b == o.b && ratio == o.ratio;
        }
    };
    struct MAddKeyHash {
        std::size_t operator()(const MAddKey& k) const;
    };

    MEdge buildGateLevel(const Matrix& u,
                         const std::vector<std::size_t>& qubits,
                         std::size_t level, std::size_t row, std::size_t col);
    VEdge addNodes(VNode* a, VNode* b, const Complex& ratio);
    MEdge addMNodes(MNode* a, MNode* b, const Complex& ratio);
    void countNodes(const VNode* node,
                    std::unordered_set<const VNode*>& seen) const;

    void markV(VNode* node);
    void markM(MNode* node);
    void notePeak();

    std::size_t numQubits_;
    bool gcEnabled_ = true;
    std::size_t gcThreshold_ = kDefaultGcThreshold;
    std::uint32_t gcGeneration_ = 0; ///< stamp compared against node marks
    ComplexTable weights_;
    std::deque<VNode> vArena_;
    std::deque<MNode> mArena_;
    VNode* vFree_ = nullptr; ///< collected nodes, chained via nextFree
    MNode* mFree_ = nullptr;
    std::vector<VEdge> vRoots_; ///< protected roots (session-held edges)
    std::vector<MEdge> mRoots_;
    std::unordered_map<VKey, VNode*, VKeyHash> vUnique_;
    std::unordered_map<MKey, MNode*, MKeyHash> mUnique_;
    std::unordered_map<ApplyKey, VEdge, ApplyKeyHash> applyCache_;
    std::unordered_map<AddKey, VEdge, AddKeyHash> addCache_;
    std::unordered_map<MmKey, MEdge, MmKeyHash> mmCache_;
    std::unordered_map<MAddKey, MEdge, MAddKeyHash> mAddCache_;
    DdStats stats_;
};

} // namespace qkc

#endif // QKC_DD_DD_PACKAGE_H
