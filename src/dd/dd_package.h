#ifndef QKC_DD_DD_PACKAGE_H
#define QKC_DD_DD_PACKAGE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dd/complex_table.h"
#include "dd/dd_node.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace qkc {

/** Operation counters exposed for tests and the compile-metrics CLI. */
struct DdStats {
    std::size_t uniqueVNodes = 0;   ///< live vector nodes in the unique table
    std::size_t uniqueMNodes = 0;   ///< live matrix nodes in the unique table
    std::size_t vHits = 0;          ///< vector unique-table hits (dedups)
    std::size_t mHits = 0;          ///< matrix unique-table hits (dedups)
    std::size_t applyHits = 0;      ///< matrix-vector compute-table hits
    std::size_t applyMisses = 0;
    std::size_t addHits = 0;        ///< vector-add compute-table hits
    std::size_t addMisses = 0;
};

/**
 * The QMDD package: owns every node, keeps the unique tables that give
 * canonical (maximally shared) diagrams, and memoizes the two recursive
 * operations — vector addition and matrix-vector application — in compute
 * tables.
 *
 * Lifetime model: nodes live in an arena owned by the package and are only
 * released when the package is destroyed or reset(); there is no reference
 * counting or garbage collection (adequate for the circuit sizes the test
 * and bench suites run; see ROADMAP for the GC follow-up). Every VEdge /
 * MEdge handed out is valid for the lifetime of the package.
 */
class DdPackage {
  public:
    explicit DdPackage(std::size_t numQubits);

    std::size_t numQubits() const { return numQubits_; }

    // -- Construction --------------------------------------------------------

    /** The all-zeros computational basis state |00...0>. */
    VEdge makeZeroState();

    /** An arbitrary computational basis state (qubit 0 = MSB of `basis`). */
    VEdge makeBasisState(std::uint64_t basis);

    /**
     * Lowers a 2^k x 2^k gate (or Kraus) matrix acting on `qubits` —
     * qubits[0] the most significant bit of the matrix's local basis index,
     * exactly the Gate::unitary() convention — into a full n-qubit matrix
     * DD, with identity structure on uninvolved levels. Zero matrix entries
     * never allocate nodes, so sparse gates stay sparse.
     */
    MEdge makeGateDd(const Matrix& u, const std::vector<std::size_t>& qubits);

    // -- Normalizing constructors (exposed for the invariant tests) ----------

    /**
     * Canonical vector node: children weights are rescaled so that
     * |w0|^2 + |w1|^2 = 1 with the first non-zero weight real >= 0, the
     * factored-out weight moves to the returned edge, and the node is
     * deduplicated through the unique table. All-zero children collapse to
     * the zero edge.
     */
    VEdge makeVNode(std::size_t level, const VEdge& e0, const VEdge& e1);

    /**
     * Canonical matrix node: weights are divided by the largest-magnitude
     * child weight (first among equals), which becomes exactly 1.
     */
    MEdge makeMNode(std::size_t level, const std::array<MEdge, 4>& children);

    // -- Operations -----------------------------------------------------------

    /** Element-wise sum a + b (memoized). */
    VEdge add(const VEdge& a, const VEdge& b);

    /** Matrix-vector product m * v (memoized) — one gate application. */
    VEdge apply(const MEdge& m, const VEdge& v);

    // -- Queries --------------------------------------------------------------

    /** Amplitude of one basis state: the product of weights along its path. */
    Complex amplitude(const VEdge& state, std::uint64_t basis) const;

    /**
     * Squared 2-norm of the represented vector. Thanks to the per-node
     * normalization invariant this is just |root weight|^2.
     */
    double normSquared(const VEdge& state) const;

    /**
     * <a|b> = sum_x conj(a_x) b_x by a simultaneous memoized walk of both
     * diagrams — cost is the product of live node-pair counts, not 2^n.
     * Combined with apply(), this serves native Pauli expectation values:
     * <psi|P|psi> = innerProduct(psi, apply(P_dd, psi)).
     */
    Complex innerProduct(const VEdge& a, const VEdge& b) const;

    /** Rescales the root weight to unit magnitude (phase preserved). */
    VEdge normalized(const VEdge& state) const;

    /** All 2^n outcome probabilities (small n; used by tests and the CLI). */
    std::vector<double> probabilities(const VEdge& state) const;

    /**
     * Draws one measurement outcome by walking the diagram root-to-terminal:
     * at each node the branch probabilities are the squared child weights
     * (the normalization invariant makes them sum to 1), so a sample costs
     * O(n) independent of the state's density.
     */
    std::uint64_t sampleOutcome(const VEdge& state, Rng& rng) const;

    /** Number of distinct nodes reachable from `state` (terminal excluded). */
    std::size_t nodeCount(const VEdge& state) const;

    const DdStats& stats() const { return stats_; }

    /** Distinct weight components interned in the complex table. */
    std::size_t internedWeightCount() const { return weights_.size(); }

    /** Drops compute-table memo entries (unique tables and nodes survive). */
    void clearComputeTables();

    /** Frees every node and table; previously returned edges become invalid. */
    void reset();

  private:
    struct VKey {
        std::size_t level;
        std::array<VNode*, 2> nodes;
        std::array<InternedComplex, 2> weights;
        bool operator==(const VKey& o) const
        {
            return level == o.level && nodes == o.nodes && weights == o.weights;
        }
    };
    struct MKey {
        std::size_t level;
        std::array<MNode*, 4> nodes;
        std::array<InternedComplex, 4> weights;
        bool operator==(const MKey& o) const
        {
            return level == o.level && nodes == o.nodes && weights == o.weights;
        }
    };
    struct VKeyHash {
        std::size_t operator()(const VKey& k) const;
    };
    struct MKeyHash {
        std::size_t operator()(const MKey& k) const;
    };
    struct ApplyKey {
        const MNode* m;
        const VNode* v;
        bool operator==(const ApplyKey& o) const
        {
            return m == o.m && v == o.v;
        }
    };
    struct ApplyKeyHash {
        std::size_t operator()(const ApplyKey& k) const;
    };
    struct AddKey {
        const VNode* a;
        const VNode* b;
        QuantizedComplex ratio; ///< b's weight relative to a's (factored out)
        bool operator==(const AddKey& o) const
        {
            return a == o.a && b == o.b && ratio == o.ratio;
        }
    };
    struct AddKeyHash {
        std::size_t operator()(const AddKey& k) const;
    };

    MEdge buildGateLevel(const Matrix& u,
                         const std::vector<std::size_t>& qubits,
                         std::size_t level, std::size_t row, std::size_t col);
    VEdge addNodes(VNode* a, VNode* b, const Complex& ratio);
    void countNodes(const VNode* node,
                    std::unordered_set<const VNode*>& seen) const;

    std::size_t numQubits_;
    ComplexTable weights_;
    std::deque<VNode> vArena_;
    std::deque<MNode> mArena_;
    std::unordered_map<VKey, VNode*, VKeyHash> vUnique_;
    std::unordered_map<MKey, MNode*, MKeyHash> mUnique_;
    std::unordered_map<ApplyKey, VEdge, ApplyKeyHash> applyCache_;
    std::unordered_map<AddKey, VEdge, AddKeyHash> addCache_;
    DdStats stats_;
};

} // namespace qkc

#endif // QKC_DD_DD_PACKAGE_H
