#ifndef QKC_DD_DD_SIMULATOR_H
#define QKC_DD_DD_SIMULATOR_H

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/simulation_path.h"
#include "dd/dd_package.h"
#include "util/rng.h"

namespace qkc {

/**
 * Decision-diagram quantum circuit simulator — our stand-in for the JKQ
 * DDSIM family of QMDD simulators.
 *
 * Ideal circuits build the final state as a vector DD by applying one
 * matrix DD per gate; measurement outcomes are then drawn in O(n) per
 * sample by walking the diagram (the per-node normalization invariant makes
 * branch probabilities local). Memory and time track the state's *structure*
 * — GHZ-like and peaked states stay linear in qubits — rather than 2^n,
 * which is why this backend shines on the same workloads as knowledge
 * compilation.
 *
 * Noisy circuits use Monte-Carlo trajectories exactly like the state-vector
 * backend: each trajectory picks one Kraus operator per channel with the
 * Born probability ||E_k psi||^2 (free to read off the DD root weight) and
 * renormalizes, which is exact in distribution for mixtures and general
 * channels alike.
 */
/** Package memory-lifecycle knobs (the dd backend's gc/gcthreshold). */
struct DdGcOptions {
    bool enabled = true;
    std::size_t threshold = DdPackage::kDefaultGcThreshold;
};

/** What one simulatePath() run did — reported up into ResultMeta. */
struct DdPathStats {
    std::size_t mmProducts = 0;     ///< multiplyMM tree nodes evaluated
    std::size_t cachedSubtrees = 0; ///< frozen MM subtrees served from cache
};

class DdSimulator {
  public:
    DdSimulator() = default;
    explicit DdSimulator(const DdGcOptions& gc) : gc_(gc) {}

    /** Runs the ideal part of `circuit`; throws if it contains noise. */
    VEdge simulate(const Circuit& circuit);

    /**
     * Runs the ideal circuit along a simulation path: MM nodes fuse whole
     * channel-free layers into one matrix DD via DdPackage::multiplyMM
     * before a single apply() touches the state, so a structured layer
     * costs one matrix-vector sweep instead of one per gate. Frozen MM
     * subtrees (every source gate non-parameterized and non-Custom) are
     * kept as protected roots and reused across parameter rebinds of the
     * same circuit structure; a different structure or path shape clears
     * the cache automatically. Throws if the circuit contains noise (path
     * execution is ideal-only — the noisy backends keep trajectories).
     */
    VEdge simulatePath(const Circuit& circuit, const SimulationPath& path,
                       DdPathStats* stats = nullptr);

    /** Drops (and unprotects) the frozen path-subtree cache. */
    void clearPathCache();

    /** Runs one noisy trajectory (gates exact, channels Born-sampled). */
    VEdge simulateTrajectory(const Circuit& circuit, Rng& rng);

    /** Draws `numSamples` outcomes from the ideal circuit (one build). */
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng);

    /** One outcome per trajectory for noisy circuits. */
    std::vector<std::uint64_t> sampleNoisy(const Circuit& circuit,
                                           std::size_t numSamples, Rng& rng);

    /**
     * One outcome per trajectory, each trajectory drawing every Kraus
     * selection and its final measurement from its own generator seeded
     * with seeds[i]. Because trajectory i's randomness no longer depends on
     * how many draws trajectories 0..i-1 consumed, a caller can split the
     * seed list across simulators (one per worker lane) and concatenate
     * the outcomes — the dd session's trajectory-parallel noisy Sample —
     * and still read the same payload at every lane count.
     */
    std::vector<std::uint64_t> sampleNoisySeeded(
        const Circuit& circuit, const std::vector<std::uint64_t>& seeds);

    /** Exact outcome distribution of the ideal circuit (small n). */
    std::vector<double> distribution(const Circuit& circuit);

    /**
     * The package owning every node of the last simulate/sample call. The
     * package persists across calls with the same qubit count (a different
     * count re-creates it); when garbage collection is enabled, edges a
     * caller holds across package operations must be protected or
     * incRef'd to survive the sweeps sampleNoisy triggers between
     * trajectories.
     */
    DdPackage& package();

    /** True once a package exists (after the first simulate/sample). */
    bool hasPackage() const { return pkg_ != nullptr; }

  private:
    DdPackage& packageFor(const Circuit& circuit);

    /**
     * The matrix DD for one gate. Parameter-free gates (H, CNOT, ...) are
     * built once per package and kept as protected roots — a rebind into a
     * persistent package re-lowers only the gates whose angles changed.
     * With GC off every call lowers afresh (nodes are pinned anyway, and
     * the unique table dedups repeats within one package lifetime).
     */
    MEdge gateDd(const Gate& gate);

    /** One matrix DD per gate, one DD per Kraus operator per channel. */
    std::vector<std::vector<MEdge>> lowerOperations(const Circuit& circuit);

    VEdge runTrajectory(const Circuit& circuit,
                        const std::vector<std::vector<MEdge>>& lowered,
                        Rng& rng);
    VEdge applyKrausSampled(const std::vector<MEdge>& krausDds, VEdge state,
                            Rng& rng);

    DdGcOptions gc_;
    std::unique_ptr<DdPackage> pkg_;
    /** Protected DDs of parameter-free gates, keyed by (kind, qubits). */
    std::map<std::pair<int, std::vector<std::size_t>>, MEdge> fixedGateDds_;
    /** Protected frozen MM-subtree operators, keyed by path-node index. */
    std::map<std::size_t, MEdge> pathNodeDds_;
    /** Fingerprint (structure + path shape) the subtree cache is valid for. */
    std::uint64_t pathCacheSig_ = 0;
};

} // namespace qkc

#endif // QKC_DD_DD_SIMULATOR_H
