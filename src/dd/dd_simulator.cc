#include "dd/dd_simulator.h"

#include <stdexcept>

#include "circuit/gate.h"
#include "obs/trace.h"

namespace qkc {

DdPackage&
DdSimulator::packageFor(const Circuit& circuit)
{
    if (!pkg_ || pkg_->numQubits() != circuit.numQubits()) {
        pkg_ = std::make_unique<DdPackage>(circuit.numQubits());
        pkg_->setGc(gc_.enabled, gc_.threshold);
        fixedGateDds_.clear(); // roots died with the old package
        pathNodeDds_.clear();
        pathCacheSig_ = 0;
    }
    return *pkg_;
}

MEdge
DdSimulator::gateDd(const Gate& gate)
{
    if (!gc_.enabled || gate.isParameterized())
        return pkg_->makeGateDd(gate.unitary(), gate.qubits());
    const auto key =
        std::make_pair(static_cast<int>(gate.kind()), gate.qubits());
    auto it = fixedGateDds_.find(key);
    if (it == fixedGateDds_.end()) {
        const MEdge dd = pkg_->makeGateDd(gate.unitary(), gate.qubits());
        pkg_->protect(dd);
        it = fixedGateDds_.emplace(key, dd).first;
    }
    return it->second;
}

/**
 * Lowers every operation once: gates become a single matrix DD, channels
 * one matrix DD per Kraus operator. Trajectories then only pay multiply
 * cost, and the shared unique table (plus the fixed-gate cache) dedups
 * identical gates across the whole circuit.
 */
std::vector<std::vector<MEdge>>
DdSimulator::lowerOperations(const Circuit& circuit)
{
    std::vector<std::vector<MEdge>> lowered;
    lowered.reserve(circuit.size());
    for (const auto& op : circuit.operations()) {
        if (const Gate* g = std::get_if<Gate>(&op)) {
            lowered.push_back({gateDd(*g)});
            continue;
        }
        const auto& ch = std::get<NoiseChannel>(op);
        std::vector<MEdge> kraus;
        kraus.reserve(ch.krausOperators().size());
        for (const Matrix& e : ch.krausOperators())
            kraus.push_back(pkg_->makeGateDd(e, ch.qubits()));
        lowered.push_back(std::move(kraus));
    }
    return lowered;
}

DdPackage&
DdSimulator::package()
{
    if (!pkg_)
        throw std::logic_error("DdSimulator::package: nothing simulated yet");
    return *pkg_;
}

VEdge
DdSimulator::simulate(const Circuit& circuit)
{
    DdPackage& pkg = packageFor(circuit);
    VEdge state = pkg.makeZeroState();
    for (const auto& op : circuit.operations()) {
        const Gate* g = std::get_if<Gate>(&op);
        if (!g) {
            throw std::invalid_argument(
                "DdSimulator::simulate: circuit has noise; use "
                "simulateTrajectory");
        }
        state = pkg.apply(gateDd(*g), state);
    }
    return state;
}

namespace {

/** True when a rebind of the same structure cannot change this gate. */
bool
gateIsFrozen(const Gate& g)
{
    return !g.isParameterized() && g.kind() != GateKind::Custom1Q &&
           g.kind() != GateKind::Custom2Q;
}

/**
 * Fingerprint of what the frozen-subtree cache depends on: the circuit
 * *structure* (op kinds and wires — values of frozen gates cannot differ
 * under an equal structure) and the path *shape*. FNV-1a, locally defined
 * so the dd layer stays independent of exec's structureHash.
 */
std::uint64_t
pathCacheSignature(const Circuit& circuit, const SimulationPath& path)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    mix(circuit.numQubits());
    mix(circuit.size());
    for (const Operation& op : circuit.operations()) {
        mix(op.index());
        if (const Gate* g = std::get_if<Gate>(&op)) {
            mix(static_cast<std::uint64_t>(g->kind()));
            for (std::size_t q : g->qubits())
                mix(q);
        } else {
            const auto& ch = std::get<NoiseChannel>(op);
            for (std::size_t q : ch.qubits())
                mix(q);
            mix(ch.krausOperators().size());
        }
    }
    mix(static_cast<std::uint64_t>(path.planner));
    mix(path.nodes.size());
    mix(static_cast<std::uint64_t>(path.root));
    for (const SimulationPath::Node& n : path.nodes) {
        mix(static_cast<std::uint64_t>(n.kind));
        mix(n.opIndex);
        mix(static_cast<std::uint64_t>(n.left));
        mix(static_cast<std::uint64_t>(n.right));
    }
    return h;
}

} // namespace

void
DdSimulator::clearPathCache()
{
    if (pkg_) {
        for (const auto& [index, edge] : pathNodeDds_) {
            (void)index;
            pkg_->unprotect(edge);
        }
    }
    pathNodeDds_.clear();
    pathCacheSig_ = 0;
}

VEdge
DdSimulator::simulatePath(const Circuit& circuit, const SimulationPath& path,
                          DdPathStats* stats)
{
    DdPackage& pkg = packageFor(circuit);
    if (path.empty())
        return pkg.makeZeroState();

    const std::uint64_t sig = pathCacheSignature(circuit, path);
    if (sig != pathCacheSig_) {
        clearPathCache();
        pathCacheSig_ = sig;
    }

    const auto& ops = circuit.operations();
    const std::size_t n = path.nodes.size();

    // Frozen flags bottom-up (children precede parents in `nodes`): an MM
    // subtree is frozen when every gate below it is rebind-invariant.
    std::vector<bool> frozen(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        const auto& node = path.nodes[i];
        if (node.kind == SimulationPath::Node::Kind::Op) {
            const Gate* g = std::get_if<Gate>(&ops[node.opIndex]);
            frozen[i] = g != nullptr && gateIsFrozen(*g);
        } else if (node.kind == SimulationPath::Node::Kind::MM) {
            frozen[i] = frozen[static_cast<std::size_t>(node.left)] &&
                        frozen[static_cast<std::size_t>(node.right)];
        }
    }

    DdPathStats local;
    std::vector<MEdge> mval(n);
    std::vector<VEdge> vval(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto& node = path.nodes[i];
        switch (node.kind) {
        case SimulationPath::Node::Kind::State:
            vval[i] = pkg.makeZeroState();
            break;
        case SimulationPath::Node::Kind::Op: {
            const Gate* g = std::get_if<Gate>(&ops[node.opIndex]);
            if (!g) {
                throw std::invalid_argument(
                    "DdSimulator::simulatePath: circuit has noise; use "
                    "simulateTrajectory");
            }
            mval[i] = gateDd(*g);
            break;
        }
        case SimulationPath::Node::Kind::MM: {
            if (frozen[i]) {
                auto it = pathNodeDds_.find(i);
                if (it != pathNodeDds_.end()) {
                    mval[i] = it->second;
                    ++local.cachedSubtrees;
                    break;
                }
            }
            const std::size_t l = static_cast<std::size_t>(node.left);
            const std::size_t r = static_cast<std::size_t>(node.right);
            {
                // later * earlier: right is the subtree applied after left.
                QKC_SPAN("exec.mm");
                mval[i] = pkg.multiplyMM(mval[r], mval[l]);
            }
            ++local.mmProducts;
            if (frozen[i]) {
                pkg.protect(mval[i]);
                pathNodeDds_.emplace(i, mval[i]);
            }
            break;
        }
        case SimulationPath::Node::Kind::MV:
            vval[i] = pkg.apply(mval[static_cast<std::size_t>(node.right)],
                                vval[static_cast<std::size_t>(node.left)]);
            break;
        }
    }

    if (stats)
        *stats = local;
    if (path.root < 0 || static_cast<std::size_t>(path.root) >= n)
        throw std::logic_error("DdSimulator::simulatePath: malformed path");
    return vval[static_cast<std::size_t>(path.root)];
}

VEdge
DdSimulator::applyKrausSampled(const std::vector<MEdge>& krausDds, VEdge state,
                               Rng& rng)
{
    // Born-rule Kraus selection: p_k = ||E_k psi||^2, which the per-node
    // normalization invariant exposes as the squared root weight.
    std::vector<VEdge> candidates;
    std::vector<double> weights;
    candidates.reserve(krausDds.size());
    weights.reserve(krausDds.size());
    for (const MEdge& e : krausDds) {
        VEdge cand = pkg_->apply(e, state);
        weights.push_back(cand.isZero() ? 0.0 : pkg_->normSquared(cand));
        candidates.push_back(cand);
    }
    const std::size_t pick = rng.categorical(weights);
    if (weights[pick] <= 0.0)
        throw std::logic_error("DdSimulator: selected zero-probability Kraus "
                               "branch");
    return pkg_->normalized(candidates[pick]);
}

VEdge
DdSimulator::runTrajectory(const Circuit& circuit,
                           const std::vector<std::vector<MEdge>>& lowered,
                           Rng& rng)
{
    VEdge state = pkg_->makeZeroState();
    for (std::size_t i = 0; i < lowered.size(); ++i) {
        if (std::holds_alternative<Gate>(circuit.operations()[i]))
            state = pkg_->apply(lowered[i][0], state);
        else
            state = applyKrausSampled(lowered[i], state, rng);
    }
    return state;
}

VEdge
DdSimulator::simulateTrajectory(const Circuit& circuit, Rng& rng)
{
    packageFor(circuit);
    return runTrajectory(circuit, lowerOperations(circuit), rng);
}

std::vector<std::uint64_t>
DdSimulator::sample(const Circuit& circuit, std::size_t numSamples, Rng& rng)
{
    VEdge state = simulate(circuit);
    std::vector<std::uint64_t> samples;
    samples.reserve(numSamples);
    for (std::size_t s = 0; s < numSamples; ++s)
        samples.push_back(pkg_->sampleOutcome(state, rng));
    return samples;
}

namespace {

/** Keeps the lowered gate/Kraus DDs rooted across trajectory sweeps. */
class LoweredRoots {
  public:
    LoweredRoots(DdPackage& pkg,
                 const std::vector<std::vector<MEdge>>& lowered)
        : pkg_(pkg), lowered_(lowered)
    {
        for (const auto& op : lowered_)
            for (const MEdge& e : op)
                pkg_.protect(e);
    }

    ~LoweredRoots()
    {
        for (const auto& op : lowered_)
            for (const MEdge& e : op)
                pkg_.unprotect(e);
    }

    LoweredRoots(const LoweredRoots&) = delete;
    LoweredRoots& operator=(const LoweredRoots&) = delete;

  private:
    DdPackage& pkg_;
    const std::vector<std::vector<MEdge>>& lowered_;
};

} // namespace

std::vector<std::uint64_t>
DdSimulator::sampleNoisy(const Circuit& circuit, std::size_t numSamples,
                         Rng& rng)
{
    DdPackage& pkg = packageFor(circuit);
    const auto lowered = lowerOperations(circuit);
    // Each trajectory's state dies the moment its outcome is drawn; only
    // the lowered operation DDs must outlive the between-trajectory sweeps,
    // so a >= 5k-trajectory run holds a bounded live-node count instead of
    // growing linearly in trajectories.
    LoweredRoots roots(pkg, lowered);

    std::vector<std::uint64_t> samples;
    samples.reserve(numSamples);
    for (std::size_t s = 0; s < numSamples; ++s) {
        if (pkg.gcEnabled()) {
            pkg.maybeGarbageCollect();
        } else if (s > 0 && s % 128 == 0) {
            // GC off: nodes are pinned for the package lifetime, but the
            // memo tables can at least be bounded.
            pkg.clearComputeTables();
        }

        VEdge state = runTrajectory(circuit, lowered, rng);
        samples.push_back(pkg.sampleOutcome(state, rng));
    }
    return samples;
}

std::vector<std::uint64_t>
DdSimulator::sampleNoisySeeded(const Circuit& circuit,
                               const std::vector<std::uint64_t>& seeds)
{
    DdPackage& pkg = packageFor(circuit);
    const auto lowered = lowerOperations(circuit);
    LoweredRoots roots(pkg, lowered);

    std::vector<std::uint64_t> samples;
    samples.reserve(seeds.size());
    for (std::size_t s = 0; s < seeds.size(); ++s) {
        if (pkg.gcEnabled()) {
            pkg.maybeGarbageCollect();
        } else if (s > 0 && s % 128 == 0) {
            pkg.clearComputeTables();
        }

        Rng trajectoryRng(seeds[s]);
        VEdge state = runTrajectory(circuit, lowered, trajectoryRng);
        samples.push_back(pkg.sampleOutcome(state, trajectoryRng));
    }
    return samples;
}

std::vector<double>
DdSimulator::distribution(const Circuit& circuit)
{
    VEdge state = simulate(circuit);
    return pkg_->probabilities(state);
}

} // namespace qkc
