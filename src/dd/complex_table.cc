#include "dd/complex_table.h"

#include <cmath>

namespace qkc {

namespace {

std::int64_t
bucketOf(double x)
{
    const double scaled = x / ComplexTable::kTolerance;
    // Clamp: buckets only need to distinguish values, not represent them.
    if (scaled > 9.2e18)
        return INT64_MAX;
    if (scaled < -9.2e18)
        return INT64_MIN;
    return static_cast<std::int64_t>(std::llround(scaled));
}

} // namespace

const double*
ComplexTable::intern(double x)
{
    const std::int64_t b = bucketOf(x);
    // A value within kTolerance of x lives in bucket b or a neighbor.
    const std::int64_t candidates[3] = {
        b == INT64_MIN ? b : b - 1, b, b == INT64_MAX ? b : b + 1};
    for (std::int64_t nb : candidates) {
        auto it = buckets_.find(nb);
        if (it == buckets_.end())
            continue;
        for (const double* v : it->second) {
            if (std::abs(*v - x) <= kTolerance)
                return v;
        }
    }
    storage_.push_back(x);
    const double* stored = &storage_.back();
    buckets_[b].push_back(stored);
    return stored;
}

void
ComplexTable::clear()
{
    buckets_.clear();
    storage_.clear();
}

} // namespace qkc
