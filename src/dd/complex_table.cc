#include "dd/complex_table.h"

#include <cmath>

namespace qkc {

namespace {

std::int64_t
bucketOf(double x)
{
    const double scaled = x / ComplexTable::kTolerance;
    // Clamp: buckets only need to distinguish values, not represent them.
    if (scaled > 9.2e18)
        return INT64_MAX;
    if (scaled < -9.2e18)
        return INT64_MIN;
    return static_cast<std::int64_t>(std::llround(scaled));
}

} // namespace

const double*
ComplexTable::intern(double x)
{
    const std::int64_t b = bucketOf(x);
    // A value within kTolerance of x lives in bucket b or a neighbor.
    const std::int64_t candidates[3] = {
        b == INT64_MIN ? b : b - 1, b, b == INT64_MAX ? b : b + 1};
    for (std::int64_t nb : candidates) {
        auto it = buckets_.find(nb);
        if (it == buckets_.end())
            continue;
        for (const double* v : it->second) {
            if (std::abs(*v - x) <= kTolerance)
                return v;
        }
    }
    double* slot;
    if (!freeSlots_.empty()) {
        // Reuse a slot a sweep recycled; addresses of live entries are
        // untouched either way (deque storage never relocates).
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        *slot = x;
    } else {
        storage_.push_back(x);
        slot = &storage_.back();
    }
    buckets_[b].push_back(slot);
    ++liveCount_;
    return slot;
}

void
ComplexTable::sweep(const std::unordered_set<const double*>& live)
{
    std::unordered_map<std::int64_t, std::vector<const double*>> kept;
    std::size_t keptCount = 0;
    for (auto& [bucket, entries] : buckets_) {
        for (const double* p : entries) {
            if (live.count(p) != 0) {
                kept[bucket].push_back(p);
                ++keptCount;
            } else {
                freeSlots_.push_back(const_cast<double*>(p));
            }
        }
    }
    buckets_ = std::move(kept);
    liveCount_ = keptCount;
}

void
ComplexTable::clear()
{
    buckets_.clear();
    freeSlots_.clear();
    storage_.clear();
    liveCount_ = 0;
}

} // namespace qkc
