#ifndef QKC_UTIL_CLI_H
#define QKC_UTIL_CLI_H

#include <cstdint>
#include <map>
#include <string>

namespace qkc {

/**
 * Minimal --key=value / --flag command line parser for the benchmark
 * harness binaries (every bench accepts e.g. --max-qubits=16 --samples=500
 * so the paper experiments can be re-run at reduced or full scale).
 */
class Cli {
  public:
    Cli(int argc, char** argv);

    /** True if --name or --name=... was passed. */
    bool has(const std::string& name) const;

    std::string getString(const std::string& name, const std::string& dflt) const;
    std::int64_t getInt(const std::string& name, std::int64_t dflt) const;
    double getDouble(const std::string& name, double dflt) const;

  private:
    std::map<std::string, std::string> args_;
};

} // namespace qkc

#endif // QKC_UTIL_CLI_H
