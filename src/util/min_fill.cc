#include "util/min_fill.h"

#include <algorithm>
#include <set>

#include "util/graph.h"

namespace qkc {

namespace {

using AdjSets = std::vector<std::set<std::size_t>>;

AdjSets
toAdjSets(const Graph& g)
{
    AdjSets adj(g.numVertices());
    for (const auto& [u, v] : g.edges()) {
        adj[u].insert(v);
        adj[v].insert(u);
    }
    return adj;
}

/** Number of missing edges among the neighbors of v. */
std::size_t
fillCount(const AdjSets& adj, std::size_t v)
{
    std::size_t fill = 0;
    const auto& nbrs = adj[v];
    for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
        auto jt = it;
        for (++jt; jt != nbrs.end(); ++jt) {
            if (!adj[*it].count(*jt))
                ++fill;
        }
    }
    return fill;
}

/** Removes v from the graph, connecting its neighbors into a clique. */
void
eliminate(AdjSets& adj, std::size_t v)
{
    const auto nbrs = adj[v];
    for (std::size_t u : nbrs) {
        for (std::size_t w : nbrs) {
            if (u < w) {
                adj[u].insert(w);
                adj[w].insert(u);
            }
        }
    }
    for (std::size_t u : nbrs)
        adj[u].erase(v);
    adj[v].clear();
}

} // namespace

std::vector<std::size_t>
minFillOrdering(const Graph& g)
{
    const std::size_t n = g.numVertices();
    AdjSets adj = toAdjSets(g);
    std::vector<bool> eliminated(n, false);
    std::vector<std::size_t> order;
    order.reserve(n);

    for (std::size_t step = 0; step < n; ++step) {
        std::size_t best = SIZE_MAX;
        std::size_t bestFill = SIZE_MAX;
        std::size_t bestDegree = SIZE_MAX;
        for (std::size_t v = 0; v < n; ++v) {
            if (eliminated[v])
                continue;
            std::size_t fill = fillCount(adj, v);
            std::size_t deg = adj[v].size();
            // Tie-break min-fill by min-degree, then index, for determinism.
            if (fill < bestFill || (fill == bestFill && deg < bestDegree)) {
                best = v;
                bestFill = fill;
                bestDegree = deg;
            }
        }
        order.push_back(best);
        eliminated[best] = true;
        eliminate(adj, best);
    }
    return order;
}

std::size_t
inducedWidth(const Graph& g, const std::vector<std::size_t>& order)
{
    AdjSets adj = toAdjSets(g);
    std::size_t width = 0;
    for (std::size_t v : order) {
        width = std::max(width, adj[v].size());
        eliminate(adj, v);
    }
    return width;
}

} // namespace qkc
