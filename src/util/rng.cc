#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qkc {

namespace {

std::uint64_t
splitMix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& w : state_)
        w = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -n % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u = 0.0;
    while (u == 0.0)
        u = uniform();
    double v = uniform();
    double mag = std::sqrt(-2.0 * std::log(u));
    spare_ = mag * std::sin(2.0 * M_PI * v);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * v);
}

std::size_t
Rng::categorical(const std::vector<double>& weights)
{
    assert(!weights.empty());
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (!(total > 0.0))
        throw std::invalid_argument(
            "Rng::categorical: no positive weight to sample from");
    double r = uniform() * total;
    double acc = 0.0;
    // Only a positive weight can advance acc past r, so the scan can skip
    // zero-weight entries outright; the fallback (floating-point
    // accumulation can leave acc fractionally below total forever) must
    // return the last *positive*-weight index — the old "last index"
    // fallback could select a zero-probability outcome when the weight
    // vector ends in zeros.
    std::size_t lastPositive = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] <= 0.0)
            continue;
        lastPositive = i;
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return lastPositive;
}

} // namespace qkc
