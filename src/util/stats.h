#ifndef QKC_UTIL_STATS_H
#define QKC_UTIL_STATS_H

#include <cstdint>
#include <vector>

namespace qkc {

/**
 * Distribution utilities used by the sampling-accuracy experiments
 * (paper Figures 3 and 7).
 */

/**
 * Builds an empirical probability distribution over [0, numOutcomes) from a
 * list of observed outcomes. Outcomes outside the range are ignored.
 */
std::vector<double> empiricalDistribution(const std::vector<std::uint64_t>& samples,
                                          std::size_t numOutcomes);

/**
 * Kullback-Leibler divergence D(p || q) in nats.
 *
 * Matches the paper's metric choice (Section 3.3.3): terms where p_i == 0
 * contribute nothing, so outcomes never drawn from low-probability states do
 * not blow up the score. Terms where p_i > 0 but q_i == 0 are clamped by
 * flooring q_i at `floor` (the sampled distribution q is the one that may
 * have zero mass on a true-support outcome).
 */
double klDivergence(const std::vector<double>& p, const std::vector<double>& q,
                    double floor = 1e-12);

/** Total variation distance (1/2) * sum |p_i - q_i|. */
double totalVariation(const std::vector<double>& p, const std::vector<double>& q);

/** Normalizes a non-negative vector in place to sum to one (no-op if all zero). */
void normalize(std::vector<double>& v);

/** Returns indices of v sorted by descending value (probability rank order). */
std::vector<std::size_t> rankByDescending(const std::vector<double>& v);

/** Arithmetic mean. Returns 0 for an empty input. */
double mean(const std::vector<double>& v);

/** Sample standard deviation. Returns 0 for fewer than two entries. */
double stddev(const std::vector<double>& v);

} // namespace qkc

#endif // QKC_UTIL_STATS_H
