#ifndef QKC_UTIL_GRAPH_H
#define QKC_UTIL_GRAPH_H

#include <cstddef>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace qkc {

/**
 * Small undirected simple graph used for variational workload generation
 * (Max-Cut instances, 2D Ising grids) and for structural orderings in the
 * knowledge compiler (primal graphs of CNFs).
 */
class Graph {
  public:
    explicit Graph(std::size_t numVertices = 0);

    std::size_t numVertices() const { return adj_.size(); }
    std::size_t numEdges() const { return edges_.size(); }

    /** Adds an undirected edge u-v; self loops and duplicates are ignored. */
    void addEdge(std::size_t u, std::size_t v);

    bool hasEdge(std::size_t u, std::size_t v) const;

    const std::vector<std::size_t>& neighbors(std::size_t v) const
    {
        return adj_[v];
    }

    /** All edges as (u, v) pairs with u < v, in insertion order. */
    const std::vector<std::pair<std::size_t, std::size_t>>& edges() const
    {
        return edges_;
    }

    std::size_t degree(std::size_t v) const { return adj_[v].size(); }

    /** Component id per vertex; ids are dense starting at 0. */
    std::vector<std::size_t> connectedComponents() const;

  private:
    std::vector<std::vector<std::size_t>> adj_;
    std::vector<std::pair<std::size_t, std::size_t>> edges_;
};

/**
 * Random d-regular graph via the pairing model with restarts (the paper's
 * QAOA Max-Cut instances use random 3-regular graphs). Requires n*d even and
 * d < n.
 */
Graph randomRegularGraph(std::size_t n, std::size_t d, Rng& rng);

/** rows x cols 2D grid graph (nearest-neighbor Ising couplings for VQE). */
Graph gridGraph(std::size_t rows, std::size_t cols);

/**
 * Size of the cut induced by `assignment` (bit i = side of vertex i):
 * the number of edges whose endpoints fall on different sides.
 */
std::size_t cutValue(const Graph& g, std::uint64_t assignment);

/** The maximum cut value over all 2^n assignments (brute force, n <= 24). */
std::size_t maxCutBruteForce(const Graph& g);

} // namespace qkc

#endif // QKC_UTIL_GRAPH_H
