#ifndef QKC_UTIL_TIMER_H
#define QKC_UTIL_TIMER_H

#include <chrono>

namespace qkc {

/** Simple monotonic wall-clock stopwatch used by the benchmark harnesses. */
class Timer {
  public:
    Timer() { reset(); }

    /** Restarts the stopwatch. */
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double seconds() const
    {
        auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    /** Milliseconds elapsed since construction or the last reset(). */
    double millis() const { return seconds() * 1e3; }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace qkc

#endif // QKC_UTIL_TIMER_H
