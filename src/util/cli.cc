#include "util/cli.h"

#include <cstdlib>
#include <string_view>

namespace qkc {

Cli::Cli(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (arg.substr(0, 2) != "--")
            continue;
        arg.remove_prefix(2);
        auto eq = arg.find('=');
        if (eq == std::string_view::npos)
            args_[std::string(arg)] = "";
        else
            args_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
}

bool
Cli::has(const std::string& name) const
{
    return args_.count(name) > 0;
}

std::string
Cli::getString(const std::string& name, const std::string& dflt) const
{
    auto it = args_.find(name);
    return it == args_.end() ? dflt : it->second;
}

std::int64_t
Cli::getInt(const std::string& name, std::int64_t dflt) const
{
    auto it = args_.find(name);
    return it == args_.end() ? dflt : std::strtoll(it->second.c_str(), nullptr, 10);
}

double
Cli::getDouble(const std::string& name, double dflt) const
{
    auto it = args_.find(name);
    return it == args_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
}

} // namespace qkc
