#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace qkc {

std::vector<double>
empiricalDistribution(const std::vector<std::uint64_t>& samples,
                      std::size_t numOutcomes)
{
    std::vector<double> dist(numOutcomes, 0.0);
    std::size_t counted = 0;
    for (std::uint64_t s : samples) {
        if (s < numOutcomes) {
            dist[s] += 1.0;
            ++counted;
        }
    }
    if (counted > 0) {
        for (double& d : dist)
            d /= static_cast<double>(counted);
    }
    return dist;
}

double
klDivergence(const std::vector<double>& p, const std::vector<double>& q,
             double floor)
{
    assert(p.size() == q.size());
    double kl = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i] <= 0.0)
            continue;
        double qi = std::max(q[i], floor);
        kl += p[i] * std::log(p[i] / qi);
    }
    return kl;
}

double
totalVariation(const std::vector<double>& p, const std::vector<double>& q)
{
    assert(p.size() == q.size());
    double tv = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
        tv += std::abs(p[i] - q[i]);
    return 0.5 * tv;
}

void
normalize(std::vector<double>& v)
{
    double total = std::accumulate(v.begin(), v.end(), 0.0);
    if (total <= 0.0)
        return;
    for (double& x : v)
        x /= total;
}

std::vector<std::size_t>
rankByDescending(const std::vector<double>& v)
{
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) { return v[a] > v[b]; });
    return idx;
}

double
mean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double
stddev(const std::vector<double>& v)
{
    if (v.size() < 2)
        return 0.0;
    double m = mean(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

} // namespace qkc
