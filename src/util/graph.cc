#include "util/graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace qkc {

Graph::Graph(std::size_t numVertices) : adj_(numVertices) {}

void
Graph::addEdge(std::size_t u, std::size_t v)
{
    assert(u < numVertices() && v < numVertices());
    if (u == v || hasEdge(u, v))
        return;
    adj_[u].push_back(v);
    adj_[v].push_back(u);
    edges_.emplace_back(std::min(u, v), std::max(u, v));
}

bool
Graph::hasEdge(std::size_t u, std::size_t v) const
{
    const auto& nu = adj_[u];
    return std::find(nu.begin(), nu.end(), v) != nu.end();
}

std::vector<std::size_t>
Graph::connectedComponents() const
{
    const std::size_t n = numVertices();
    std::vector<std::size_t> comp(n, SIZE_MAX);
    std::size_t next = 0;
    std::vector<std::size_t> stack;
    for (std::size_t s = 0; s < n; ++s) {
        if (comp[s] != SIZE_MAX)
            continue;
        comp[s] = next;
        stack.push_back(s);
        while (!stack.empty()) {
            std::size_t v = stack.back();
            stack.pop_back();
            for (std::size_t w : adj_[v]) {
                if (comp[w] == SIZE_MAX) {
                    comp[w] = next;
                    stack.push_back(w);
                }
            }
        }
        ++next;
    }
    return comp;
}

Graph
randomRegularGraph(std::size_t n, std::size_t d, Rng& rng)
{
    if (n * d % 2 != 0 || d >= n)
        throw std::invalid_argument("randomRegularGraph: need n*d even, d < n");

    // Pairing model: n*d half-edge stubs are matched uniformly; retry on
    // self loops or parallel edges. For small d this converges quickly.
    for (int attempt = 0; attempt < 1000; ++attempt) {
        std::vector<std::size_t> stubs;
        stubs.reserve(n * d);
        for (std::size_t v = 0; v < n; ++v)
            for (std::size_t k = 0; k < d; ++k)
                stubs.push_back(v);
        rng.shuffle(stubs);

        Graph g(n);
        bool ok = true;
        for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
            std::size_t u = stubs[i];
            std::size_t v = stubs[i + 1];
            if (u == v || g.hasEdge(u, v)) {
                ok = false;
                break;
            }
            g.addEdge(u, v);
        }
        if (ok)
            return g;
    }
    throw std::runtime_error("randomRegularGraph: failed to converge");
}

Graph
gridGraph(std::size_t rows, std::size_t cols)
{
    Graph g(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            std::size_t v = r * cols + c;
            if (c + 1 < cols)
                g.addEdge(v, v + 1);
            if (r + 1 < rows)
                g.addEdge(v, v + cols);
        }
    }
    return g;
}

std::size_t
cutValue(const Graph& g, std::uint64_t assignment)
{
    std::size_t cut = 0;
    for (const auto& [u, v] : g.edges()) {
        bool su = (assignment >> u) & 1;
        bool sv = (assignment >> v) & 1;
        if (su != sv)
            ++cut;
    }
    return cut;
}

std::size_t
maxCutBruteForce(const Graph& g)
{
    assert(g.numVertices() <= 24);
    std::size_t best = 0;
    const std::uint64_t total = std::uint64_t{1} << g.numVertices();
    for (std::uint64_t a = 0; a < total; ++a)
        best = std::max(best, cutValue(g, a));
    return best;
}

} // namespace qkc
