#ifndef QKC_UTIL_MIN_FILL_H
#define QKC_UTIL_MIN_FILL_H

#include <cstddef>
#include <vector>

namespace qkc {

class Graph;

/**
 * Min-fill elimination ordering over an interaction graph.
 *
 * The knowledge compiler (Section 3.2.2 of the paper) chooses the order in
 * which qubit-state variables are decided; the paper compares lexicographic
 * ordering against a hypergraph-partitioning order. Min-fill over the CNF
 * primal graph is the classical structure-aware heuristic we use as the
 * stand-in: at each step eliminate the vertex whose neighborhood needs the
 * fewest fill-in edges to become a clique, then connect its neighbors.
 *
 * Returns a permutation of [0, n): order[i] is the i-th vertex eliminated.
 */
std::vector<std::size_t> minFillOrdering(const Graph& g);

/**
 * Induced treewidth of an elimination order (max clique size - 1 during
 * elimination). Used by tests and by the tensor-network contraction planner
 * to score candidate orders.
 */
std::size_t inducedWidth(const Graph& g, const std::vector<std::size_t>& order);

} // namespace qkc

#endif // QKC_UTIL_MIN_FILL_H
