#ifndef QKC_UTIL_RNG_H
#define QKC_UTIL_RNG_H

#include <cstdint>
#include <vector>

namespace qkc {

/**
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every stochastic component in the toolchain (noise trajectory selection,
 * Gibbs sampling, workload generation) draws from an explicitly seeded Rng
 * so experiments are reproducible run-to-run.
 */
class Rng {
  public:
    /** Seeds the four-word state from a single seed via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit word. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller. */
    double normal();

    /**
     * Draws an index from an unnormalized non-negative weight vector; only
     * positive-weight indices can be returned (if floating-point
     * accumulation pushes the draw past the total, the last positive-weight
     * index is selected). Throws std::invalid_argument when no weight is
     * positive.
     */
    std::size_t categorical(const std::vector<double>& weights);

    /** Fisher-Yates shuffle of v. */
    template <typename T>
    void shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace qkc

#endif // QKC_UTIL_RNG_H
