#ifndef QKC_TENSORNET_TENSORNET_SIMULATOR_H
#define QKC_TENSORNET_TENSORNET_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "tensornet/tensor.h"
#include "util/rng.h"

namespace qkc {

/**
 * Tensor-network contraction simulator for ideal circuits — the stand-in
 * for the qTorch baseline (paper Section 4.1). The circuit is converted to
 * a tensor network (initial-state vectors, gate tensors, measurement
 * vectors) and contracted pairwise with a greedy minimum-result-size order.
 *
 * Amplitude queries contract a single-layer network; sampling draws each
 * output bit from its conditional marginal, computed by contracting the
 * DOUBLED (ket + conjugate bra) network — one contraction per qubit per
 * sample, which is the per-sample cost profile Figure 8 measures against
 * knowledge compilation.
 */
class TensorNetworkSimulator {
  public:
    /** Amplitude <bitstring| C |0...0>. Throws on noisy circuits. */
    Complex amplitude(const Circuit& circuit, std::uint64_t bitstring) const;

    /** Full distribution via 2^n amplitude contractions (tests only). */
    std::vector<double> distribution(const Circuit& circuit) const;

    /**
     * Probability that the first `prefixLen` qubits measure the leading
     * bits of `prefixBits` (doubled-network contraction).
     */
    double prefixProbability(const Circuit& circuit, std::uint64_t prefixBits,
                             std::size_t prefixLen) const;

    /** Sequential conditional sampling of full measurement outcomes. */
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) const;

    struct Network {
        std::vector<Tensor> tensors;
        std::vector<int> outputEdges;  ///< per qubit
        int nextEdge = 0;
    };

    /** Builds the single-layer (ket) network; conjugated if `conj`. */
    static Network buildNetwork(const Circuit& circuit, bool conj);

  private:
    /** Greedy pairwise contraction to a scalar. */
    static Complex contractToScalar(std::vector<Tensor> tensors);
};

/**
 * Reusable tensor-network sampler: contraction plans for every prefix
 * length are computed once at construction (structural, value-independent)
 * and replayed per sample, so drawing many samples only pays contraction
 * arithmetic — the qTorch-style sampling loop used by the Figure 8 bench.
 */
class TnSampler {
  public:
    explicit TnSampler(const Circuit& circuit);

    /**
     * Refreshes every tensor's values from a circuit with the *same
     * structure* (gate kinds and wires; parameters may differ) while
     * keeping the precomputed contraction plans — the variational fast
     * path: a parameter sweep re-pays only contraction arithmetic, never
     * contraction planning. Throws std::invalid_argument on a structure
     * mismatch.
     */
    void rebind(const Circuit& circuit);

    /** P(first prefixLen qubits measure the low bits of prefixBits). */
    double prefixProbability(std::uint64_t prefixBits, std::size_t prefixLen);

    /** Draws measurement outcomes bit-by-bit from conditional marginals. */
    std::vector<std::uint64_t> sample(std::size_t numSamples, Rng& rng);

    /** Greedy structural contraction order over `tensors`. */
    static std::vector<std::pair<std::size_t, std::size_t>> planContraction(
        const std::vector<Tensor>& tensors);

    /** Replays a contraction plan on concrete tensor values. */
    static Complex executePlan(
        std::vector<Tensor> tensors,
        const std::vector<std::pair<std::size_t, std::size_t>>& plan);

    /**
     * A reusable doubled-network (ket x bra) marginal query over a qubit
     * subset: the tensors, one projector pair per selected qubit, and a
     * contraction plan replayed per assignment. The per-prefix sampling
     * plans and the Probabilities task's arbitrary-subset marginals are
     * both instances of this.
     */
    struct MarginalPlan {
        std::vector<Tensor> tensors;
        /** Per selected qubit: (ket projector index, bra projector index). */
        std::vector<std::pair<std::size_t, std::size_t>> projectors;
        std::vector<std::pair<std::size_t, std::size_t>> plan;
    };

    /**
     * Builds the doubled network for a marginal over `qubits` (the given
     * order defines the output index, qubits[0] = MSB): unselected output
     * edges are identified (traced out), selected qubits get projector
     * placeholders. `plan` is left empty — fill it with planContraction to
     * make the result reusable across assignments. Throws on out-of-range
     * or repeated qubits and on noisy circuits.
     */
    static MarginalPlan buildMarginalTensors(
        const Circuit& circuit, const std::vector<std::size_t>& qubits);

    /** P(selected qubits read the bits of `assignment`), plan filled in. */
    static double marginalProbability(const MarginalPlan& mp,
                                      std::uint64_t assignment);

  private:
    std::size_t numQubits_;
    std::vector<MarginalPlan> plans_; ///< per prefix length 1..n
};

} // namespace qkc

#endif // QKC_TENSORNET_TENSORNET_SIMULATOR_H
