#ifndef QKC_TENSORNET_TENSOR_H
#define QKC_TENSORNET_TENSOR_H

#include <cstdint>
#include <vector>

#include "linalg/types.h"

namespace qkc {

/**
 * A dense tensor whose indices are all dimension 2 (qubit legs), identified
 * by integer edge ids. Data is flat with the FIRST edge as the most
 * significant bit of the linear index.
 */
struct Tensor {
    std::vector<int> edges;
    std::vector<Complex> data;

    std::size_t rank() const { return edges.size(); }
    std::size_t size() const { return data.size(); }

    /** A rank-1 tensor [a, b] on edge e. */
    static Tensor vec(int e, const Complex& a, const Complex& b);
};

/**
 * Contracts two tensors over all shared edges (tensor product when none are
 * shared). Cost is 2^(#freeA + #freeB + #shared).
 */
Tensor contractPair(const Tensor& a, const Tensor& b);

} // namespace qkc

#endif // QKC_TENSORNET_TENSOR_H
