#include "tensornet/tensor.h"

#include <algorithm>
#include <cassert>

namespace qkc {

Tensor
Tensor::vec(int e, const Complex& a, const Complex& b)
{
    Tensor t;
    t.edges = {e};
    t.data = {a, b};
    return t;
}

Tensor
contractPair(const Tensor& a, const Tensor& b)
{
    // Partition edges.
    std::vector<int> shared;
    for (int e : a.edges)
        if (std::find(b.edges.begin(), b.edges.end(), e) != b.edges.end())
            shared.push_back(e);
    std::vector<int> freeA, freeB;
    for (int e : a.edges)
        if (std::find(shared.begin(), shared.end(), e) == shared.end())
            freeA.push_back(e);
    for (int e : b.edges)
        if (std::find(shared.begin(), shared.end(), e) == shared.end())
            freeB.push_back(e);

    Tensor out;
    out.edges = freeA;
    out.edges.insert(out.edges.end(), freeB.begin(), freeB.end());
    out.data.assign(std::size_t{1} << out.edges.size(), Complex{});

    // Bit position of each role within the operands' linear indices.
    auto positions = [](const std::vector<int>& tensorEdges,
                        const std::vector<int>& wanted) {
        std::vector<int> pos;
        pos.reserve(wanted.size());
        for (int e : wanted) {
            auto it = std::find(tensorEdges.begin(), tensorEdges.end(), e);
            assert(it != tensorEdges.end());
            // Shift amount: first edge is the most significant bit.
            pos.push_back(static_cast<int>(tensorEdges.size() - 1 -
                                           (it - tensorEdges.begin())));
        }
        return pos;
    };
    auto posFreeA = positions(a.edges, freeA);
    auto posSharedA = positions(a.edges, shared);
    auto posFreeB = positions(b.edges, freeB);
    auto posSharedB = positions(b.edges, shared);

    const std::size_t nFreeA = freeA.size();
    const std::size_t nFreeB = freeB.size();
    const std::size_t nShared = shared.size();

    auto compose = [](const std::vector<int>& pos, std::size_t bits) {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < pos.size(); ++i) {
            if ((bits >> (pos.size() - 1 - i)) & 1)
                idx |= std::size_t{1} << pos[i];
        }
        return idx;
    };

    for (std::size_t ia = 0; ia < (std::size_t{1} << nFreeA); ++ia) {
        const std::size_t baseA = compose(posFreeA, ia);
        for (std::size_t ib = 0; ib < (std::size_t{1} << nFreeB); ++ib) {
            const std::size_t baseB = compose(posFreeB, ib);
            Complex acc{};
            for (std::size_t is = 0; is < (std::size_t{1} << nShared); ++is) {
                acc += a.data[baseA | compose(posSharedA, is)] *
                       b.data[baseB | compose(posSharedB, is)];
            }
            out.data[(ia << nFreeB) | ib] = acc;
        }
    }
    return out;
}

} // namespace qkc
