#include "tensornet/tensornet_simulator.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "linalg/types.h"
#include "obs/metrics.h"

namespace qkc {

namespace {

/** Gate tensor with edges [outBits..., inBits...] and data U[out][in]. */
Tensor
gateTensor(const Gate& gate, const std::vector<int>& outEdges,
           const std::vector<int>& inEdges, bool conj)
{
    Matrix u = gate.unitary();
    const std::size_t k = gate.arity();
    const std::size_t dim = std::size_t{1} << k;
    Tensor t;
    t.edges = outEdges;
    t.edges.insert(t.edges.end(), inEdges.begin(), inEdges.end());
    t.data.resize(dim * dim);
    for (std::size_t o = 0; o < dim; ++o)
        for (std::size_t i = 0; i < dim; ++i)
            t.data[(o << k) | i] = conj ? std::conj(u(o, i)) : u(o, i);
    return t;
}

} // namespace

TensorNetworkSimulator::Network
TensorNetworkSimulator::buildNetwork(const Circuit& circuit, bool conj)
{
    Network net;
    const std::size_t n = circuit.numQubits();
    std::vector<int> current(n);
    for (std::size_t q = 0; q < n; ++q) {
        current[q] = net.nextEdge++;
        net.tensors.push_back(Tensor::vec(current[q], 1.0, 0.0));
    }
    for (const auto& op : circuit.operations()) {
        const Gate* g = std::get_if<Gate>(&op);
        if (!g) {
            throw std::invalid_argument(
                "TensorNetworkSimulator: noisy circuits unsupported (the "
                "qTorch baseline is ideal-only; see Figure 8)");
        }
        std::vector<int> inEdges, outEdges;
        for (std::size_t q : g->qubits()) {
            inEdges.push_back(current[q]);
            outEdges.push_back(net.nextEdge++);
        }
        net.tensors.push_back(gateTensor(*g, outEdges, inEdges, conj));
        for (std::size_t j = 0; j < g->qubits().size(); ++j)
            current[g->qubits()[j]] = outEdges[j];
    }
    net.outputEdges = current;
    return net;
}

Complex
TensorNetworkSimulator::contractToScalar(std::vector<Tensor> tensors)
{
    auto plan = TnSampler::planContraction(tensors);
    return TnSampler::executePlan(std::move(tensors), plan);
}

Complex
TensorNetworkSimulator::amplitude(const Circuit& circuit,
                                  std::uint64_t bitstring) const
{
    Network net = buildNetwork(circuit, false);
    const std::size_t n = circuit.numQubits();
    for (std::size_t q = 0; q < n; ++q) {
        int bit = static_cast<int>((bitstring >> (n - 1 - q)) & 1);
        net.tensors.push_back(Tensor::vec(net.outputEdges[q],
                                          bit == 0 ? 1.0 : 0.0,
                                          bit == 1 ? 1.0 : 0.0));
    }
    return contractToScalar(std::move(net.tensors));
}

std::vector<double>
TensorNetworkSimulator::distribution(const Circuit& circuit) const
{
    const std::size_t n = circuit.numQubits();
    std::vector<double> dist(std::size_t{1} << n);
    for (std::uint64_t x = 0; x < dist.size(); ++x)
        dist[x] = norm2(amplitude(circuit, x));
    return dist;
}

double
TensorNetworkSimulator::prefixProbability(const Circuit& circuit,
                                          std::uint64_t prefixBits,
                                          std::size_t prefixLen) const
{
    TnSampler sampler(circuit);
    return sampler.prefixProbability(prefixBits, prefixLen);
}

std::vector<std::uint64_t>
TensorNetworkSimulator::sample(const Circuit& circuit, std::size_t numSamples,
                               Rng& rng) const
{
    TnSampler sampler(circuit);
    return sampler.sample(numSamples, rng);
}

// ---------------------------------------------------------------------------
// TnSampler
// ---------------------------------------------------------------------------

TnSampler::MarginalPlan
TnSampler::buildMarginalTensors(const Circuit& circuit,
                                const std::vector<std::size_t>& qubits)
{
    // A doubled (ket x bra) network: unselected qubits have their ket and
    // bra output edges identified, which traces them out; selected qubits
    // get a projector vector on each side.
    const std::size_t n = circuit.numQubits();
    std::vector<bool> selected(n, false);
    for (std::size_t q : qubits) {
        if (q >= n)
            throw std::invalid_argument(
                "TnSampler: marginal qubit out of range");
        if (selected[q])
            throw std::invalid_argument("TnSampler: repeated marginal qubit");
        selected[q] = true;
    }

    TensorNetworkSimulator::Network ket =
        TensorNetworkSimulator::buildNetwork(circuit, false);
    TensorNetworkSimulator::Network bra =
        TensorNetworkSimulator::buildNetwork(circuit, true);
    const int offset = ket.nextEdge;
    for (Tensor& t : bra.tensors)
        for (int& e : t.edges)
            e += offset;
    for (int& e : bra.outputEdges)
        e += offset;

    MarginalPlan mp;
    mp.tensors = std::move(ket.tensors);
    mp.tensors.insert(mp.tensors.end(),
                      std::make_move_iterator(bra.tensors.begin()),
                      std::make_move_iterator(bra.tensors.end()));
    // Identify traced output edges.
    for (std::size_t q = 0; q < n; ++q) {
        if (selected[q])
            continue;
        for (Tensor& t : mp.tensors)
            for (int& e : t.edges)
                if (e == bra.outputEdges[q])
                    e = ket.outputEdges[q];
    }
    // Projector placeholders for selected qubits, in the given order.
    for (std::size_t q : qubits) {
        mp.projectors.emplace_back(mp.tensors.size(), mp.tensors.size() + 1);
        mp.tensors.push_back(Tensor::vec(ket.outputEdges[q], 1.0, 0.0));
        mp.tensors.push_back(Tensor::vec(bra.outputEdges[q], 1.0, 0.0));
    }
    return mp;
}

double
TnSampler::marginalProbability(const MarginalPlan& mp,
                               std::uint64_t assignment)
{
    const std::size_t k = mp.projectors.size();
    std::vector<Tensor> tensors = mp.tensors;
    for (std::size_t j = 0; j < k; ++j) {
        const int bit = static_cast<int>((assignment >> (k - 1 - j)) & 1u);
        auto [ketIdx, braIdx] = mp.projectors[j];
        tensors[ketIdx].data = {bit == 0 ? 1.0 : 0.0, bit == 1 ? 1.0 : 0.0};
        tensors[braIdx].data = tensors[ketIdx].data;
    }
    Complex p = executePlan(std::move(tensors), mp.plan);
    return std::max(0.0, p.real());
}

namespace {

std::vector<std::size_t>
prefixQubits(std::size_t prefixLen)
{
    std::vector<std::size_t> qs(prefixLen);
    for (std::size_t q = 0; q < prefixLen; ++q)
        qs[q] = q;
    return qs;
}

} // namespace

TnSampler::TnSampler(const Circuit& circuit)
    : numQubits_(circuit.numQubits())
{
    for (std::size_t prefixLen = 1; prefixLen <= numQubits_; ++prefixLen) {
        MarginalPlan mp =
            buildMarginalTensors(circuit, prefixQubits(prefixLen));
        mp.plan = planContraction(mp.tensors);
        plans_.push_back(std::move(mp));
    }
}

void
TnSampler::rebind(const Circuit& circuit)
{
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("TnSampler::rebind: qubit count differs");
    for (std::size_t prefixLen = 1; prefixLen <= numQubits_; ++prefixLen) {
        MarginalPlan& mp = plans_[prefixLen - 1];
        MarginalPlan fresh =
            buildMarginalTensors(circuit, prefixQubits(prefixLen));
        if (fresh.tensors.size() != mp.tensors.size())
            throw std::invalid_argument(
                "TnSampler::rebind: circuit structure differs");
        // Edge wiring is derived purely from the op sequence, so identical
        // edges mean the cached contraction plans replay unchanged.
        for (std::size_t i = 0; i < fresh.tensors.size(); ++i) {
            if (fresh.tensors[i].edges != mp.tensors[i].edges)
                throw std::invalid_argument(
                    "TnSampler::rebind: circuit structure differs");
        }
        mp.tensors = std::move(fresh.tensors);
        mp.projectors = std::move(fresh.projectors);
    }
}

double
TnSampler::prefixProbability(std::uint64_t prefixBits, std::size_t prefixLen)
{
    assert(prefixLen >= 1 && prefixLen <= numQubits_);
    return marginalProbability(plans_[prefixLen - 1], prefixBits);
}

std::vector<std::uint64_t>
TnSampler::sample(std::size_t numSamples, Rng& rng)
{
    std::vector<std::uint64_t> samples;
    samples.reserve(numSamples);
    for (std::size_t s = 0; s < numSamples; ++s) {
        std::uint64_t prefix = 0;
        double pPrefix = 1.0;
        for (std::size_t q = 0; q < numQubits_; ++q) {
            double p0 = prefixProbability(prefix << 1, q + 1);
            double conditional = pPrefix > 0.0 ? p0 / pPrefix : 0.5;
            if (rng.uniform() < conditional) {
                prefix = prefix << 1;
                pPrefix = p0;
            } else {
                prefix = (prefix << 1) | 1;
                pPrefix = std::max(0.0, pPrefix - p0);
            }
        }
        samples.push_back(prefix);
    }
    return samples;
}

std::vector<std::pair<std::size_t, std::size_t>>
TnSampler::planContraction(const std::vector<Tensor>& tensors)
{
    // Structural greedy: repeatedly contract the pair whose result has the
    // smallest rank, preferring pairs that share edges.
    struct Shape {
        std::set<int> edges;
        bool alive = true;
    };
    std::vector<Shape> shapes;
    shapes.reserve(tensors.size() * 2);
    for (const Tensor& t : tensors)
        shapes.push_back({{t.edges.begin(), t.edges.end()}, true});

    std::vector<std::pair<std::size_t, std::size_t>> plan;
    std::size_t aliveCount = shapes.size();
    while (aliveCount > 1) {
        std::size_t bestI = SIZE_MAX, bestJ = SIZE_MAX;
        std::size_t bestRank = SIZE_MAX;
        bool bestShares = false;
        for (std::size_t i = 0; i < shapes.size(); ++i) {
            if (!shapes[i].alive)
                continue;
            for (std::size_t j = i + 1; j < shapes.size(); ++j) {
                if (!shapes[j].alive)
                    continue;
                std::size_t sharedCount = 0;
                for (int e : shapes[i].edges)
                    sharedCount += shapes[j].edges.count(e);
                bool shares = sharedCount > 0;
                std::size_t rank = shapes[i].edges.size() +
                                   shapes[j].edges.size() - 2 * sharedCount;
                if ((shares && !bestShares) ||
                    (shares == bestShares && rank < bestRank)) {
                    bestI = i;
                    bestJ = j;
                    bestRank = rank;
                    bestShares = shares;
                }
            }
        }
        if (bestRank > 28)
            throw std::runtime_error(
                "TnSampler: contraction exceeds rank limit");
        plan.emplace_back(bestI, bestJ);
        Shape merged;
        for (int e : shapes[bestI].edges)
            if (!shapes[bestJ].edges.count(e))
                merged.edges.insert(e);
        for (int e : shapes[bestJ].edges)
            if (!shapes[bestI].edges.count(e))
                merged.edges.insert(e);
        shapes[bestI].alive = false;
        shapes[bestJ].alive = false;
        shapes.push_back(std::move(merged));
        --aliveCount;
    }
    return plan;
}

Complex
TnSampler::executePlan(std::vector<Tensor> tensors,
                       const std::vector<std::pair<std::size_t, std::size_t>>& plan)
{
    static obs::Counter contractions("tn.contractions");
    contractions.add(plan.size());
    for (const auto& [i, j] : plan) {
        tensors.push_back(contractPair(tensors[i], tensors[j]));
        tensors[i] = Tensor{};
        tensors[j] = Tensor{};
    }
    const Tensor& last = tensors.back();
    if (!last.edges.empty())
        throw std::logic_error("TnSampler: contraction left open edges");
    return last.data[0];
}

} // namespace qkc
