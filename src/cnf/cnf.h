#ifndef QKC_CNF_CNF_H
#define QKC_CNF_CNF_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bayesnet/bayes_net.h"

namespace qkc {

/** What a CNF Boolean variable stands for. */
enum class CnfVarKind : std::uint8_t {
    /**
     * Qubit-state indicator for a binary BN variable: the positive literal
     * means value 1 (|1>), the negative literal value 0 (|0>) — the paper's
     * "q0m0 = |0> XOR q0m0 = |1>" pair collapsed onto one Boolean.
     */
    BinaryIndicator,
    /**
     * One member of a one-hot group encoding a multi-valued noise random
     * variable (value k true iff the RV takes value k).
     */
    OneHotIndicator,
    /**
     * Weight variable standing in for a numeric amplitude / probability
     * parameter (Table 3, third column): true on exactly the table entries
     * that use the weight; resolved to a number at simulation time.
     */
    Param,
};

/** Metadata for one CNF variable. */
struct CnfVariable {
    CnfVarKind kind;
    BnVarId bnVar = 0;          ///< for indicators: the BN variable
    std::uint32_t value = 0;    ///< for OneHotIndicator: which value
    std::int32_t paramId = -1;  ///< for Param: index into BN param values
    bool query = false;         ///< indicator of a query (final/noise) var
};

/** A clause: non-empty set of DIMACS-style literals (var ids are 1-based). */
using Clause = std::vector<int>;

/**
 * CNF encoding of a quantum Bayesian network's structure (paper Section
 * 3.2.1). Satisfying assignments correspond one-to-one with Feynman paths;
 * the product of the weights attached to true Param variables along a model
 * is the path amplitude.
 */
struct Cnf {
    std::vector<CnfVariable> vars;
    std::vector<Clause> clauses;

    /** For each BN variable, its indicator CNF var ids (1-based, size 1 for
     *  binary variables, cardinality for one-hot groups). */
    std::vector<std::vector<int>> bnVarIndicators;

    std::size_t numVars() const { return vars.size(); }
    std::size_t numClauses() const { return clauses.size(); }

    /** Count of indicator variables only (the paper's Figure 6 x-axis). */
    std::size_t numIndicatorVars() const;

    /**
     * Writes the extended DIMACS format: a standard `p cnf` body plus
     * comment lines carrying variable metadata (`c qkc ind|hot|par ...`)
     * so the file is consumable by stock model counters and by our reader.
     */
    void writeDimacs(std::ostream& os) const;

    /** Parses the extended DIMACS produced by writeDimacs. */
    static Cnf readDimacs(std::istream& is);
};

} // namespace qkc

#endif // QKC_CNF_CNF_H
