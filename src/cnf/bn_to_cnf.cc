#include "cnf/bn_to_cnf.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace qkc {

namespace {

/**
 * Applies unit resolution: literals fixed by unit clauses are substituted
 * into all other clauses until fixpoint. Unit clauses are retained so fixed
 * variables stay pinned for the downstream compiler.
 */
void
unitResolve(Cnf& cnf)
{
    // fixed[v] : 0 unassigned, +1 true, -1 false.
    std::vector<int> fixed(cnf.vars.size() + 1, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<Clause> next;
        next.reserve(cnf.clauses.size());
        for (Clause& clause : cnf.clauses) {
            if (clause.size() == 1) {
                int lit = clause[0];
                int var = std::abs(lit);
                int sign = lit > 0 ? 1 : -1;
                if (fixed[var] == -sign)
                    throw std::logic_error("bayesNetToCnf: contradictory units");
                if (fixed[var] == 0) {
                    fixed[var] = sign;
                    changed = true;
                }
                next.push_back(std::move(clause));
                continue;
            }
            bool satisfied = false;
            Clause reduced;
            reduced.reserve(clause.size());
            for (int lit : clause) {
                int var = std::abs(lit);
                int sign = lit > 0 ? 1 : -1;
                if (fixed[var] == sign) {
                    satisfied = true;
                    break;
                }
                if (fixed[var] == 0)
                    reduced.push_back(lit);
                // Literals fixed false are dropped.
            }
            if (satisfied) {
                changed = changed || true;
                continue;  // clause removed
            }
            if (reduced.empty())
                throw std::logic_error("bayesNetToCnf: unsatisfiable encoding");
            if (reduced.size() != clause.size())
                changed = true;
            next.push_back(std::move(reduced));
        }
        cnf.clauses = std::move(next);
    }

    // Deduplicate unit clauses that may now repeat.
    std::sort(cnf.clauses.begin(), cnf.clauses.end());
    cnf.clauses.erase(std::unique(cnf.clauses.begin(), cnf.clauses.end()),
                      cnf.clauses.end());
}

} // namespace

Cnf
bayesNetToCnf(const QuantumBayesNet& bn, const BnToCnfOptions& options)
{
    Cnf cnf;
    cnf.bnVarIndicators.resize(bn.variables().size());

    // Indicator variables: one Boolean per binary BN variable, a one-hot
    // group with exactly-one clauses per multi-valued noise RV.
    for (BnVarId id = 0; id < bn.variables().size(); ++id) {
        const BnVariable& v = bn.variables()[id];
        if (v.cardinality == 2) {
            CnfVariable cv;
            cv.kind = CnfVarKind::BinaryIndicator;
            cv.bnVar = id;
            cv.query = v.isQuery();
            cnf.vars.push_back(cv);
            cnf.bnVarIndicators[id] = {static_cast<int>(cnf.vars.size())};
        } else {
            std::vector<int> group;
            for (std::uint32_t k = 0; k < v.cardinality; ++k) {
                CnfVariable cv;
                cv.kind = CnfVarKind::OneHotIndicator;
                cv.bnVar = id;
                cv.value = k;
                cv.query = v.isQuery();
                cnf.vars.push_back(cv);
                group.push_back(static_cast<int>(cnf.vars.size()));
            }
            cnf.bnVarIndicators[id] = group;
            // At least one value...
            cnf.clauses.push_back(group);
            // ... and at most one.
            for (std::size_t i = 0; i < group.size(); ++i)
                for (std::size_t j = i + 1; j < group.size(); ++j)
                    cnf.clauses.push_back({-group[i], -group[j]});
        }
    }

    // Literal for "BN variable v takes value k".
    auto literal = [&](BnVarId v, std::size_t k) -> int {
        const auto& slots = cnf.bnVarIndicators[v];
        if (slots.size() == 1)
            return k == 1 ? slots[0] : -slots[0];
        return slots[k];
    };

    // Table entries.
    for (const BnPotential& pot : bn.potentials()) {
        std::vector<std::size_t> cards;
        cards.reserve(pot.vars.size());
        for (BnVarId v : pot.vars)
            cards.push_back(bn.variable(v).cardinality);

        std::vector<std::size_t> assign(pot.vars.size(), 0);
        for (std::size_t flat = 0; flat < pot.entries.size(); ++flat) {
            std::size_t rem = flat;
            for (std::size_t i = pot.vars.size(); i-- > 0;) {
                assign[i] = rem % cards[i];
                rem /= cards[i];
            }
            const BnEntry& entry = pot.entries[flat];
            if (entry.kind == BnEntryKind::StructuralOne)
                continue;

            std::vector<int> lits(pot.vars.size());
            for (std::size_t i = 0; i < pot.vars.size(); ++i)
                lits[i] = literal(pot.vars[i], assign[i]);

            if (entry.kind == BnEntryKind::StructuralZero) {
                Clause clause;
                clause.reserve(lits.size());
                for (int l : lits)
                    clause.push_back(-l);
                cnf.clauses.push_back(std::move(clause));
                continue;
            }

            // Parameter entry: weight variable theta <=> conjunction(lits).
            CnfVariable theta;
            theta.kind = CnfVarKind::Param;
            theta.paramId = entry.paramId;
            cnf.vars.push_back(theta);
            int thetaLit = static_cast<int>(cnf.vars.size());

            Clause imp;  // lits => theta
            imp.reserve(lits.size() + 1);
            for (int l : lits)
                imp.push_back(-l);
            imp.push_back(thetaLit);
            cnf.clauses.push_back(std::move(imp));
            for (int l : lits)
                cnf.clauses.push_back({-thetaLit, l});
        }
    }

    if (options.unitResolution)
        unitResolve(cnf);
    return cnf;
}

} // namespace qkc
