#ifndef QKC_CNF_BN_TO_CNF_H
#define QKC_CNF_BN_TO_CNF_H

#include "bayesnet/bayes_net.h"
#include "cnf/cnf.h"

namespace qkc {

/** Options for the Bayesian-network-to-CNF compiler. */
struct BnToCnfOptions {
    /**
     * Apply logical unit resolution: literals fixed by unit clauses (known
     * initial qubit states) are substituted into every other clause (paper
     * Section 3.2.1, simplification rule 1). The unit clauses themselves are
     * kept so the downstream compiler still pins the variables.
     */
    bool unitResolution = true;
};

/**
 * Compiles a quantum Bayesian network into a CNF whose weighted models are
 * the circuit's Feynman paths (paper Section 3.2.1 / Table 3).
 *
 * Encoding:
 *  - each binary BN variable becomes one Boolean (true = |1>);
 *  - each multi-valued noise RV becomes a one-hot group with exactly-one
 *    clauses;
 *  - each Parameter table entry e (assignment a, weight w) becomes a fresh
 *    weight variable theta_e with the equivalence theta_e <=> a, so models
 *    biject with full indicator assignments and each model's true weight
 *    variables identify exactly the table cells its path traverses;
 *  - StructuralZero entries become the hard clause NOT(a) (deterministic
 *    parameters factored directly into logic, Table 3's last rule);
 *  - StructuralOne entries produce nothing.
 */
Cnf bayesNetToCnf(const QuantumBayesNet& bn, const BnToCnfOptions& options = {});

} // namespace qkc

#endif // QKC_CNF_BN_TO_CNF_H
