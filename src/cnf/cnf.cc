#include "cnf/cnf.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace qkc {

std::size_t
Cnf::numIndicatorVars() const
{
    std::size_t n = 0;
    for (const auto& v : vars)
        n += v.kind != CnfVarKind::Param;
    return n;
}

void
Cnf::writeDimacs(std::ostream& os) const
{
    os << "c qkc quantum Bayesian network CNF\n";
    os << "p cnf " << vars.size() << " " << clauses.size() << "\n";
    for (std::size_t i = 0; i < vars.size(); ++i) {
        const auto& v = vars[i];
        switch (v.kind) {
          case CnfVarKind::BinaryIndicator:
            os << "c qkc ind " << i + 1 << " " << v.bnVar << " "
               << (v.query ? 1 : 0) << "\n";
            break;
          case CnfVarKind::OneHotIndicator:
            os << "c qkc hot " << i + 1 << " " << v.bnVar << " " << v.value
               << " " << (v.query ? 1 : 0) << "\n";
            break;
          case CnfVarKind::Param:
            os << "c qkc par " << i + 1 << " " << v.paramId << "\n";
            break;
        }
    }
    for (const Clause& c : clauses) {
        for (int lit : c)
            os << lit << " ";
        os << "0\n";
    }
}

Cnf
Cnf::readDimacs(std::istream& is)
{
    Cnf cnf;
    std::string line;
    std::size_t expectedVars = 0;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        if (line[0] == 'c') {
            std::string c, tag, kind;
            ls >> c >> tag;
            if (tag != "qkc")
                continue;
            ls >> kind;
            if (kind == "ind") {
                std::size_t idx;
                CnfVariable v;
                v.kind = CnfVarKind::BinaryIndicator;
                int query;
                ls >> idx >> v.bnVar >> query;
                v.query = query != 0;
                if (cnf.vars.size() < idx)
                    cnf.vars.resize(idx);
                cnf.vars[idx - 1] = v;
            } else if (kind == "hot") {
                std::size_t idx;
                CnfVariable v;
                v.kind = CnfVarKind::OneHotIndicator;
                int query;
                ls >> idx >> v.bnVar >> v.value >> query;
                v.query = query != 0;
                if (cnf.vars.size() < idx)
                    cnf.vars.resize(idx);
                cnf.vars[idx - 1] = v;
            } else if (kind == "par") {
                std::size_t idx;
                CnfVariable v;
                v.kind = CnfVarKind::Param;
                ls >> idx >> v.paramId;
                if (cnf.vars.size() < idx)
                    cnf.vars.resize(idx);
                cnf.vars[idx - 1] = v;
            }
            continue;
        }
        if (line[0] == 'p') {
            std::string p, fmt;
            std::size_t numClauses;
            ls >> p >> fmt >> expectedVars >> numClauses;
            continue;
        }
        Clause clause;
        int lit;
        while (ls >> lit && lit != 0)
            clause.push_back(lit);
        if (!clause.empty())
            cnf.clauses.push_back(std::move(clause));
    }
    if (cnf.vars.size() < expectedVars)
        cnf.vars.resize(expectedVars);

    // Rebuild the BN-variable -> indicator map.
    BnVarId maxBn = 0;
    for (const auto& v : cnf.vars)
        if (v.kind != CnfVarKind::Param)
            maxBn = std::max(maxBn, v.bnVar);
    cnf.bnVarIndicators.assign(maxBn + 1, {});
    for (std::size_t i = 0; i < cnf.vars.size(); ++i) {
        const auto& v = cnf.vars[i];
        if (v.kind == CnfVarKind::Param)
            continue;
        auto& slots = cnf.bnVarIndicators[v.bnVar];
        if (v.kind == CnfVarKind::BinaryIndicator) {
            slots.assign(1, static_cast<int>(i + 1));
        } else {
            if (slots.size() <= v.value)
                slots.resize(v.value + 1, 0);
            slots[v.value] = static_cast<int>(i + 1);
        }
    }
    return cnf;
}

} // namespace qkc
