#ifndef QKC_LINALG_ALIGNED_H
#define QKC_LINALG_ALIGNED_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <vector>

#include "linalg/types.h"

namespace qkc {

/**
 * Minimal aligned allocator for amplitude buffers. 64 bytes covers a full
 * cache line and the widest vector width in use (AVX-512 zmm), so a
 * contiguous run of amplitudes never starts on a split line and vector
 * loads in the kernel sweeps stay within naturally aligned lines.
 */
template <typename T, std::size_t Align = 64>
struct AlignedAllocator {
    static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
    static_assert(Align >= alignof(T), "alignment below the type's own");

    using value_type = T;

    AlignedAllocator() noexcept = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept
    {
    }

    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Align>;
    };

    T* allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(
            n * sizeof(T), static_cast<std::align_val_t>(Align)));
    }

    void deallocate(T* p, std::size_t) noexcept
    {
        ::operator delete(p, static_cast<std::align_val_t>(Align));
    }

    friend bool operator==(const AlignedAllocator&, const AlignedAllocator&)
    {
        return true;
    }
    friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&)
    {
        return false;
    }
};

/**
 * The amplitude container used by StateVector / DensityMatrix and exec
 * scratch buffers: std::vector semantics, 64-byte-aligned storage.
 */
using AmpVector = std::vector<Complex, AlignedAllocator<Complex, 64>>;

// The SIMD kernels reinterpret Complex* as interleaved (re, im) double
// pairs; pin the layout assumptions they rely on.
static_assert(sizeof(Complex) == 2 * sizeof(double),
              "Complex must be exactly an interleaved (re, im) double pair");
static_assert(alignof(Complex) <= 64,
              "Complex alignment exceeds the amplitude buffer alignment");
static_assert(std::is_trivially_copyable<Complex>::value,
              "Complex amplitudes must be memcpy-safe for vector load/store");

} // namespace qkc

#endif // QKC_LINALG_ALIGNED_H
