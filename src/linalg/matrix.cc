#include "linalg/matrix.h"

#include <cassert>
#include <cmath>

namespace qkc {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> init)
{
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
        assert(row.size() == cols_);
        for (const auto& v : row)
            data_.push_back(v);
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::zero(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols);
}

Matrix
Matrix::operator*(const Matrix& rhs) const
{
    assert(cols_ == rhs.rows_);
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            Complex a = (*this)(i, k);
            if (a == Complex{})
                continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out(i, j) += a * rhs(k, j);
        }
    }
    return out;
}

Matrix
Matrix::operator+(const Matrix& rhs) const
{
    assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + rhs.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix& rhs) const
{
    assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - rhs.data_[i];
    return out;
}

Matrix
Matrix::operator*(const Complex& scalar) const
{
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * scalar;
    return out;
}

Matrix
Matrix::adjoint() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = std::conj((*this)(i, j));
    return out;
}

Matrix
Matrix::kron(const Matrix& rhs) const
{
    Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            for (std::size_t k = 0; k < rhs.rows_; ++k)
                for (std::size_t l = 0; l < rhs.cols_; ++l)
                    out(i * rhs.rows_ + k, j * rhs.cols_ + l) =
                        (*this)(i, j) * rhs(k, l);
    return out;
}

Complex
Matrix::trace() const
{
    assert(rows_ == cols_);
    Complex t{};
    for (std::size_t i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

bool
Matrix::approxEqual(const Matrix& rhs, double eps) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (!qkc::approxEqual(data_[i], rhs.data_[i], eps))
            return false;
    }
    return true;
}

bool
Matrix::isUnitary(double eps) const
{
    if (rows_ != cols_)
        return false;
    return ((*this) * adjoint()).approxEqual(identity(rows_), eps);
}

bool
Matrix::isPermutationLike(double eps) const
{
    if (rows_ != cols_)
        return false;
    for (std::size_t i = 0; i < rows_; ++i) {
        std::size_t rowNonZero = 0;
        std::size_t colNonZero = 0;
        for (std::size_t j = 0; j < cols_; ++j) {
            if (std::abs((*this)(i, j)) > eps)
                ++rowNonZero;
            if (std::abs((*this)(j, i)) > eps)
                ++colNonZero;
        }
        if (rowNonZero != 1 || colNonZero != 1)
            return false;
    }
    return true;
}

} // namespace qkc
