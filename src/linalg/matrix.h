#ifndef QKC_LINALG_MATRIX_H
#define QKC_LINALG_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/types.h"

namespace qkc {

/**
 * Dense row-major complex matrix.
 *
 * Sized for quantum gate unitaries (2x2, 4x4, 8x8) and small density
 * matrices in tests; not a general-purpose BLAS. Operations that the
 * simulators need — multiply, adjoint, Kronecker product, unitarity checks,
 * and the "one non-zero entry per row and column" permutation property the
 * Bayesian network encoding relies on (Section 3.1.1) — are provided.
 */
class Matrix {
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols);
    Matrix(std::initializer_list<std::initializer_list<Complex>> init);

    static Matrix identity(std::size_t n);
    static Matrix zero(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    Complex& operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    const Complex& operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    Matrix operator*(const Matrix& rhs) const;
    Matrix operator+(const Matrix& rhs) const;
    Matrix operator-(const Matrix& rhs) const;
    Matrix operator*(const Complex& scalar) const;

    /** Conjugate transpose. */
    Matrix adjoint() const;

    /** Kronecker (tensor) product this (x) rhs. */
    Matrix kron(const Matrix& rhs) const;

    /** Sum of diagonal entries. */
    Complex trace() const;

    bool approxEqual(const Matrix& rhs, double eps = kAmpEps) const;

    /** True if this * adjoint() == identity within eps. */
    bool isUnitary(double eps = kAmpEps) const;

    /**
     * True if every row and every column contains exactly one non-zero
     * entry. Gates with this property admit the compact deterministic
     * Bayesian-network encoding of Section 3.1.1.
     */
    bool isPermutationLike(double eps = kAmpEps) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Complex> data_;
};

} // namespace qkc

#endif // QKC_LINALG_MATRIX_H
