#ifndef QKC_LINALG_TYPES_H
#define QKC_LINALG_TYPES_H

#include <complex>

namespace qkc {

/** Complex probability amplitude. */
using Complex = std::complex<double>;

/** Tolerance used for amplitude / unitarity comparisons across the library. */
inline constexpr double kAmpEps = 1e-9;

/** |z|^2 without the sqrt of std::abs. */
inline double
norm2(const Complex& z)
{
    return z.real() * z.real() + z.imag() * z.imag();
}

/** True if two amplitudes are within kAmpEps componentwise. */
inline bool
approxEqual(const Complex& a, const Complex& b, double eps = kAmpEps)
{
    return std::abs(a.real() - b.real()) <= eps &&
           std::abs(a.imag() - b.imag()) <= eps;
}

} // namespace qkc

#endif // QKC_LINALG_TYPES_H
