#include "statevector/statevector_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qkc {

void
StateVectorSimulator::applyGate(StateVector& sv, const Gate& gate)
{
    const auto& q = gate.qubits();
    switch (gate.arity()) {
      case 1:
        sv.applySingleQubit(gate.unitary(), q[0]);
        break;
      case 2:
        sv.applyTwoQubit(gate.unitary(), q[0], q[1]);
        break;
      case 3:
        sv.applyThreeQubit(gate.unitary(), q[0], q[1], q[2]);
        break;
      default:
        throw std::logic_error("StateVectorSimulator: unsupported arity");
    }
}

StateVector
StateVectorSimulator::simulate(const Circuit& circuit) const
{
    StateVector sv(circuit.numQubits());
    for (const auto& op : circuit.operations()) {
        const Gate* g = std::get_if<Gate>(&op);
        if (!g) {
            throw std::invalid_argument(
                "StateVectorSimulator::simulate: circuit has noise; use "
                "simulateTrajectory");
        }
        applyGate(sv, *g);
    }
    return sv;
}

StateVector
StateVectorSimulator::simulateTrajectory(const Circuit& circuit, Rng& rng) const
{
    StateVector sv(circuit.numQubits());
    for (const auto& op : circuit.operations()) {
        if (const Gate* g = std::get_if<Gate>(&op)) {
            applyGate(sv, *g);
            continue;
        }
        const auto& ch = std::get<NoiseChannel>(op);
        const auto& kraus = ch.krausOperators();

        // Born-rule Kraus selection: p_k = ||E_k psi||^2. Computed by
        // applying each candidate to a copy; the copies dominate only at
        // very small qubit counts.
        std::vector<double> weights(kraus.size());
        std::vector<StateVector> results;
        results.reserve(kraus.size());
        for (std::size_t k = 0; k < kraus.size(); ++k) {
            StateVector copy = sv;
            if (ch.arity() == 1)
                copy.applySingleQubit(kraus[k], ch.qubit());
            else
                copy.applyTwoQubit(kraus[k], ch.qubits()[0], ch.qubits()[1]);
            weights[k] = copy.norm();
            results.push_back(std::move(copy));
        }
        std::size_t pick = rng.categorical(weights);
        sv = std::move(results[pick]);
        if (weights[pick] > 0.0)
            sv.normalize();
    }
    return sv;
}

std::vector<std::uint64_t>
StateVectorSimulator::sample(const Circuit& circuit, std::size_t numSamples,
                             Rng& rng) const
{
    StateVector sv = simulate(circuit);
    return sampleFromDistribution(sv.probabilities(), numSamples, rng);
}

std::vector<std::uint64_t>
StateVectorSimulator::sampleNoisy(const Circuit& circuit,
                                  std::size_t numSamples, Rng& rng) const
{
    std::vector<std::uint64_t> samples;
    samples.reserve(numSamples);
    for (std::size_t i = 0; i < numSamples; ++i) {
        StateVector sv = simulateTrajectory(circuit, rng);
        auto one = sampleFromDistribution(sv.probabilities(), 1, rng);
        samples.push_back(one[0]);
    }
    return samples;
}

std::vector<double>
StateVectorSimulator::noisyDistributionExhaustive(const Circuit& circuit) const
{
    // Collect channel positions so we can enumerate Kraus-choice vectors.
    std::vector<std::size_t> channelOps;
    for (std::size_t i = 0; i < circuit.operations().size(); ++i) {
        if (std::holds_alternative<NoiseChannel>(circuit.operations()[i]))
            channelOps.push_back(i);
    }
    if (channelOps.size() > 20) {
        throw std::invalid_argument(
            "noisyDistributionExhaustive: too many channels to enumerate");
    }

    std::vector<double> dist(std::size_t{1} << circuit.numQubits(), 0.0);
    std::vector<std::size_t> choice(channelOps.size(), 0);

    // Odometer-style enumeration over all Kraus index combinations. Each
    // combination is one unnormalized branch; its squared amplitudes already
    // carry the branch probability, so plain accumulation is exact.
    for (;;) {
        StateVector sv(circuit.numQubits());
        std::size_t chIdx = 0;
        for (const auto& op : circuit.operations()) {
            if (const Gate* g = std::get_if<Gate>(&op)) {
                applyGate(sv, *g);
            } else {
                const auto& ch = std::get<NoiseChannel>(op);
                const Matrix& e = ch.krausOperators()[choice[chIdx]];
                if (ch.arity() == 1)
                    sv.applySingleQubit(e, ch.qubit());
                else
                    sv.applyTwoQubit(e, ch.qubits()[0], ch.qubits()[1]);
                ++chIdx;
            }
        }
        const auto probs = sv.probabilities();
        for (std::size_t i = 0; i < dist.size(); ++i)
            dist[i] += probs[i];

        // Advance the odometer.
        std::size_t pos = 0;
        for (; pos < choice.size(); ++pos) {
            const auto& ch =
                std::get<NoiseChannel>(circuit.operations()[channelOps[pos]]);
            if (++choice[pos] < ch.krausOperators().size())
                break;
            choice[pos] = 0;
        }
        if (pos == choice.size())
            break;
        if (choice.empty())
            break;
    }
    return dist;
}

std::vector<std::uint64_t>
StateVectorSimulator::sampleFromDistribution(const std::vector<double>& probs,
                                             std::size_t numSamples, Rng& rng)
{
    std::vector<double> cdf(probs.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        acc += probs[i];
        cdf[i] = acc;
    }
    assert(acc > 0.0);

    std::vector<std::uint64_t> samples;
    samples.reserve(numSamples);
    for (std::size_t s = 0; s < numSamples; ++s) {
        double r = rng.uniform() * acc;
        auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
        std::size_t idx = static_cast<std::size_t>(it - cdf.begin());
        if (idx >= probs.size())
            idx = probs.size() - 1;
        samples.push_back(idx);
    }
    return samples;
}

} // namespace qkc
