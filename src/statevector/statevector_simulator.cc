#include "statevector/statevector_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qkc {

StateVector
StateVectorSimulator::simulate(const Circuit& circuit) const
{
    if (circuit.noiseCount() > 0) {
        throw std::invalid_argument(
            "StateVectorSimulator::simulate: circuit has noise; use "
            "simulateTrajectory");
    }
    return simulatePlanned(planCircuit(circuit, policy_));
}

StateVector
StateVectorSimulator::simulatePlanned(const ExecutionPlan& plan) const
{
    StateVector sv(plan.numQubits);
    sv.setExecPolicy(policy_);
    for (const auto& op : plan.ops) {
        if (op.isChannel) {
            throw std::invalid_argument(
                "StateVectorSimulator::simulatePlanned: plan has channels; "
                "use sampleNoisyPlanned");
        }
        sv.apply(op.gate);
    }
    return sv;
}

StateVector
StateVectorSimulator::runTrajectory(const ExecutionPlan& plan, Rng& rng,
                                    const ExecPolicy& statePolicy) const
{
    StateVector sv(plan.numQubits);
    sv.setExecPolicy(statePolicy);
    std::vector<double> weights;
    for (const auto& op : plan.ops) {
        if (!op.isChannel) {
            sv.apply(op.gate);
            continue;
        }
        // Born-rule Kraus selection: p_k = ||E_k psi||^2, computed by a
        // read-only norm kernel (no state copies). The 1/sqrt(w) that used
        // to be a separate normalize() pass is folded into the selected
        // operator's application.
        weights.resize(op.kraus.size());
        for (std::size_t k = 0; k < op.kraus.size(); ++k)
            weights[k] = sv.normAfter(op.kraus[k]);
        const std::size_t pick = rng.categorical(weights);
        if (weights[pick] > 0.0)
            sv.apply(op.kraus[pick],
                     Complex{1.0 / std::sqrt(weights[pick]), 0.0});
        else
            sv.apply(op.kraus[pick]);
    }
    return sv;
}

StateVector
StateVectorSimulator::simulateTrajectory(const Circuit& circuit, Rng& rng) const
{
    const ExecutionPlan plan = planCircuit(circuit, policy_);
    return runTrajectory(plan, rng, policy_);
}

std::vector<std::uint64_t>
StateVectorSimulator::sample(const Circuit& circuit, std::size_t numSamples,
                             Rng& rng) const
{
    StateVector sv = simulate(circuit);
    return sampleFromDistribution(sv.probabilities(), numSamples, rng);
}

std::vector<std::uint64_t>
StateVectorSimulator::sampleNoisy(const Circuit& circuit,
                                  std::size_t numSamples, Rng& rng) const
{
    return sampleNoisyPlanned(planCircuit(circuit, policy_), numSamples, rng);
}

std::vector<std::uint64_t>
StateVectorSimulator::sampleNoisyPlanned(const ExecutionPlan& plan,
                                         std::size_t numSamples,
                                         Rng& rng) const
{
    if (numSamples == 0)
        return {};

    // Independent per-trajectory RNG streams, seeded from the caller's
    // generator *before* any parallel work: the seed sequence — and with it
    // every trajectory and sample — is identical for every thread count.
    std::vector<std::uint64_t> seeds(numSamples);
    for (auto& s : seeds)
        s = rng.next();

    // Parallelism lives at the trajectory level: each trajectory runs its
    // amplitude sweeps serially (statePolicy.threads = 1) and results land
    // at their trajectory index, i.e. merged in trajectory order.
    ExecPolicy statePolicy = policy_;
    if (numSamples > 1)
        statePolicy.threads = 1;
    ExecPolicy trajPolicy = policy_;
    trajPolicy.serialThreshold = 1;
    trajPolicy.grain = 1;

    std::vector<std::uint64_t> samples(numSamples);
    parallelFor(trajPolicy, numSamples,
                [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) {
            Rng trajectoryRng(seeds[i]);
            StateVector sv = runTrajectory(plan, trajectoryRng, statePolicy);
            auto one = sampleFromDistribution(sv.probabilities(), 1,
                                              trajectoryRng);
            samples[i] = one[0];
        }
    });
    return samples;
}

std::vector<double>
StateVectorSimulator::noisyDistributionExhaustive(const Circuit& circuit) const
{
    // Collect channel positions so we can enumerate Kraus-choice vectors.
    const ExecutionPlan plan = planCircuit(circuit, policy_);
    std::vector<std::size_t> channelOps;
    for (std::size_t i = 0; i < plan.ops.size(); ++i) {
        if (plan.ops[i].isChannel)
            channelOps.push_back(i);
    }
    if (channelOps.size() > 20) {
        throw std::invalid_argument(
            "noisyDistributionExhaustive: too many channels to enumerate");
    }

    std::vector<double> dist(std::size_t{1} << circuit.numQubits(), 0.0);
    std::vector<std::size_t> choice(channelOps.size(), 0);

    // Odometer-style enumeration over all Kraus index combinations. Each
    // combination is one unnormalized branch; its squared amplitudes already
    // carry the branch probability, so plain accumulation is exact.
    for (;;) {
        StateVector sv(circuit.numQubits());
        sv.setExecPolicy(policy_);
        std::size_t chIdx = 0;
        for (const auto& op : plan.ops) {
            if (!op.isChannel) {
                sv.apply(op.gate);
            } else {
                sv.apply(op.kraus[choice[chIdx]]);
                ++chIdx;
            }
        }
        const auto probs = sv.probabilities();
        for (std::size_t i = 0; i < dist.size(); ++i)
            dist[i] += probs[i];

        // Advance the odometer.
        std::size_t pos = 0;
        for (; pos < choice.size(); ++pos) {
            if (++choice[pos] < plan.ops[channelOps[pos]].kraus.size())
                break;
            choice[pos] = 0;
        }
        if (pos == choice.size())
            break;
        if (choice.empty())
            break;
    }
    return dist;
}

std::vector<std::uint64_t>
StateVectorSimulator::sampleFromDistribution(const std::vector<double>& probs,
                                             std::size_t numSamples, Rng& rng)
{
    std::vector<double> cdf(probs.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        acc += probs[i];
        cdf[i] = acc;
    }
    assert(acc > 0.0);

    std::vector<std::uint64_t> samples;
    samples.reserve(numSamples);
    for (std::size_t s = 0; s < numSamples; ++s) {
        double r = rng.uniform() * acc;
        auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
        std::size_t idx = static_cast<std::size_t>(it - cdf.begin());
        if (idx >= probs.size())
            idx = probs.size() - 1;
        samples.push_back(idx);
    }
    return samples;
}

} // namespace qkc
