#ifndef QKC_STATEVECTOR_STATEVECTOR_SIMULATOR_H
#define QKC_STATEVECTOR_STATEVECTOR_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "statevector/state_vector.h"
#include "util/rng.h"

namespace qkc {

/**
 * State vector quantum circuit simulator — our stand-in for Google's qsim
 * baseline (paper Section 4.1).
 *
 * Ideal circuits run exactly: the full 2^n wavefunction is produced and
 * measurement outcomes are drawn by direct ("ideal") sampling from |psi|^2.
 *
 * Noisy circuits use Monte-Carlo trajectories: each trajectory picks one
 * Kraus operator per channel with the Born probability and renormalizes,
 * which is exact in distribution for mixtures *and* general channels, at the
 * cost of one full wavefunction pass per sample.
 */
class StateVectorSimulator {
  public:
    /** Runs the ideal part of `circuit`; throws if it contains noise. */
    StateVector simulate(const Circuit& circuit) const;

    /**
     * Runs one noisy trajectory: gates apply exactly; every channel chooses
     * a Kraus operator k with probability ||E_k psi||^2, applies it, and
     * renormalizes.
     */
    StateVector simulateTrajectory(const Circuit& circuit, Rng& rng) const;

    /** Draws `numSamples` measurement outcomes from the ideal circuit. */
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) const;

    /**
     * Draws one outcome per trajectory for noisy circuits (the qsim-style
     * noisy sampling cost model: every sample pays a full re-simulation).
     */
    std::vector<std::uint64_t> sampleNoisy(const Circuit& circuit,
                                           std::size_t numSamples,
                                           Rng& rng) const;

    /**
     * Exact outcome distribution of a noisy circuit by enumerating every
     * combination of Kraus choices. Exponential in the channel count; meant
     * for validation at small sizes.
     */
    std::vector<double> noisyDistributionExhaustive(const Circuit& circuit) const;

    /** Draws outcomes from an explicit probability vector (ideal sampling). */
    static std::vector<std::uint64_t> sampleFromDistribution(
        const std::vector<double>& probs, std::size_t numSamples, Rng& rng);

  private:
    static void applyGate(StateVector& sv, const Gate& gate);
};

} // namespace qkc

#endif // QKC_STATEVECTOR_STATEVECTOR_SIMULATOR_H
