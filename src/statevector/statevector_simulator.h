#ifndef QKC_STATEVECTOR_STATEVECTOR_SIMULATOR_H
#define QKC_STATEVECTOR_STATEVECTOR_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "exec/execution_plan.h"
#include "exec/thread_pool.h"
#include "statevector/state_vector.h"
#include "util/rng.h"

namespace qkc {

/**
 * State vector quantum circuit simulator — our stand-in for Google's qsim
 * baseline (paper Section 4.1).
 *
 * Circuits are lowered once to an execution plan (greedy gate fusion +
 * per-gate kernel classification); the amplitude sweeps then run on the
 * shared thread pool per the simulator's ExecPolicy.
 *
 * Ideal circuits run exactly: the full 2^n wavefunction is produced and
 * measurement outcomes are drawn by direct ("ideal") sampling from |psi|^2.
 *
 * Noisy circuits use Monte-Carlo trajectories: each trajectory picks one
 * Kraus operator per channel with the Born probability — computed by a
 * read-only norm kernel, no state copies — and folds the 1/sqrt(w)
 * renormalization into the selected operator's application. Trajectories
 * are independent, so sampleNoisy runs them in parallel on per-trajectory
 * RNG streams seeded from the caller's generator; results are merged in
 * trajectory order, making the output independent of the thread count.
 */
class StateVectorSimulator {
  public:
    StateVectorSimulator() = default;
    explicit StateVectorSimulator(const ExecPolicy& policy) : policy_(policy) {}

    const ExecPolicy& execPolicy() const { return policy_; }
    void setExecPolicy(const ExecPolicy& policy) { policy_ = policy; }

    /** Runs the ideal part of `circuit`; throws if it contains noise. */
    StateVector simulate(const Circuit& circuit) const;

    /**
     * Runs a pre-built ideal plan (no channels). Backend sessions plan a
     * circuit structure once and re-execute it across parameter binds.
     */
    StateVector simulatePlanned(const ExecutionPlan& plan) const;

    /**
     * Runs one noisy trajectory: gates apply exactly; every channel chooses
     * a Kraus operator k with probability ||E_k psi||^2, applies it, and
     * renormalizes (the scale folded into the application pass).
     */
    StateVector simulateTrajectory(const Circuit& circuit, Rng& rng) const;

    /** Draws `numSamples` measurement outcomes from the ideal circuit. */
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) const;

    /**
     * Draws one outcome per trajectory for noisy circuits (the qsim-style
     * noisy sampling cost model: every sample pays a full re-simulation).
     * Trajectories run in parallel when the policy allows; the sample
     * vector is identical for every thread count.
     */
    std::vector<std::uint64_t> sampleNoisy(const Circuit& circuit,
                                           std::size_t numSamples,
                                           Rng& rng) const;

    /** Trajectory sampling over a pre-built plan (see simulatePlanned). */
    std::vector<std::uint64_t> sampleNoisyPlanned(const ExecutionPlan& plan,
                                                  std::size_t numSamples,
                                                  Rng& rng) const;

    /**
     * Exact outcome distribution of a noisy circuit by enumerating every
     * combination of Kraus choices. Exponential in the channel count; meant
     * for validation at small sizes.
     */
    std::vector<double> noisyDistributionExhaustive(const Circuit& circuit) const;

    /** Draws outcomes from an explicit probability vector (ideal sampling). */
    static std::vector<std::uint64_t> sampleFromDistribution(
        const std::vector<double>& probs, std::size_t numSamples, Rng& rng);

  private:
    /** One trajectory over a pre-built plan (state policy already set). */
    StateVector runTrajectory(const ExecutionPlan& plan, Rng& rng,
                              const ExecPolicy& statePolicy) const;

    ExecPolicy policy_;
};

} // namespace qkc

#endif // QKC_STATEVECTOR_STATEVECTOR_SIMULATOR_H
