#ifndef QKC_STATEVECTOR_STATE_VECTOR_H
#define QKC_STATEVECTOR_STATE_VECTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qkc {

/**
 * Dense 2^n complex state vector with in-place gate application kernels.
 *
 * This is the storage-heavy representation the paper's qsim baseline uses
 * (Section 4.1): every simulation run touches all 2^n amplitudes, which is
 * exactly the cost profile Figure 8 measures against knowledge compilation.
 *
 * Bit convention matches Circuit: qubit 0 is the most significant bit of the
 * basis index.
 */
class StateVector {
  public:
    /** Initializes |00...0>. */
    explicit StateVector(std::size_t numQubits);

    std::size_t numQubits() const { return numQubits_; }
    std::size_t dimension() const { return amps_.size(); }

    const Complex& amplitude(std::uint64_t basis) const { return amps_[basis]; }
    Complex& amplitude(std::uint64_t basis) { return amps_[basis]; }
    const std::vector<Complex>& amplitudes() const { return amps_; }

    /** Applies a 2x2 matrix (not necessarily unitary) to one qubit. */
    void applySingleQubit(const Matrix& m, std::size_t qubit);

    /** Applies a 4x4 matrix to (q0=high bit, q1=low bit of the local index). */
    void applyTwoQubit(const Matrix& m, std::size_t q0, std::size_t q1);

    /** Applies a 8x8 matrix to three qubits (q0 high ... q2 low). */
    void applyThreeQubit(const Matrix& m, std::size_t q0, std::size_t q1,
                         std::size_t q2);

    /** Sum of |amplitude|^2 (1.0 for normalized states). */
    double norm() const;

    /** Scales all amplitudes by 1/sqrt(norm()). Requires norm() > 0. */
    void normalize();

    /** Probability of each basis outcome (|amp|^2). */
    std::vector<double> probabilities() const;

  private:
    std::size_t numQubits_;
    std::vector<Complex> amps_;
};

} // namespace qkc

#endif // QKC_STATEVECTOR_STATE_VECTOR_H
