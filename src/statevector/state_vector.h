#ifndef QKC_STATEVECTOR_STATE_VECTOR_H
#define QKC_STATEVECTOR_STATE_VECTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/gate_kernels.h"
#include "exec/thread_pool.h"
#include "linalg/aligned.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qkc {

/**
 * Dense 2^n complex state vector with in-place gate application kernels.
 *
 * This is the storage-heavy representation the paper's qsim baseline uses
 * (Section 4.1): every simulation run touches all 2^n amplitudes, which is
 * exactly the cost profile Figure 8 measures against knowledge compilation.
 *
 * Gate application goes through the exec kernel layer: the matrix is
 * classified (diagonal / permutation / controlled / generic) and the sweep
 * is parallelized on the shared thread pool per the instance's ExecPolicy.
 * All kernels and reductions are deterministic — a 1-thread and an N-thread
 * run produce bit-identical amplitudes.
 *
 * Bit convention matches Circuit: qubit 0 is the most significant bit of the
 * basis index.
 */
class StateVector {
  public:
    /** Initializes |00...0>. */
    explicit StateVector(std::size_t numQubits);

    std::size_t numQubits() const { return numQubits_; }
    std::size_t dimension() const { return amps_.size(); }

    const Complex& amplitude(std::uint64_t basis) const { return amps_[basis]; }
    Complex& amplitude(std::uint64_t basis) { return amps_[basis]; }
    /** 64-byte-aligned amplitude buffer (cache-line and zmm aligned). */
    const AmpVector& amplitudes() const { return amps_; }
    Complex* data() { return amps_.data(); }
    const Complex* data() const { return amps_.data(); }

    /** Threading/fusion knobs used by every kernel sweep on this state. */
    const ExecPolicy& execPolicy() const { return policy_; }
    void setExecPolicy(const ExecPolicy& policy) { policy_ = policy; }

    /** Applies a 2x2 matrix (not necessarily unitary) to one qubit. */
    void applySingleQubit(const Matrix& m, std::size_t qubit);

    /** Applies a 4x4 matrix to (q0=high bit, q1=low bit of the local index). */
    void applyTwoQubit(const Matrix& m, std::size_t q0, std::size_t q1);

    /** Applies a 8x8 matrix to three qubits (q0 high ... q2 low). */
    void applyThreeQubit(const Matrix& m, std::size_t q0, std::size_t q1,
                         std::size_t q2);

    /**
     * Applies a pre-compiled kernel, optionally pre-scaled: the trajectory
     * simulator passes 1/sqrt(w) so Born renormalization after a Kraus pick
     * costs no extra pass over the state.
     */
    void apply(const GateKernel& kernel,
               const Complex& preScale = Complex{1.0, 0.0});

    /** ||K psi||^2 without modifying the state (Born weights of Kraus picks). */
    double normAfter(const GateKernel& kernel) const;

    /** Bit position of `qubit` in a basis index (qubit 0 = MSB). */
    std::uint32_t bitOf(std::size_t qubit) const
    {
        return static_cast<std::uint32_t>(numQubits_ - 1 - qubit);
    }

    /** Sum of |amplitude|^2 (1.0 for normalized states). */
    double norm() const;

    /** Scales all amplitudes by 1/sqrt(norm()). Requires norm() > 0. */
    void normalize();

    /** Probability of each basis outcome (|amp|^2). */
    std::vector<double> probabilities() const;

  private:
    std::size_t numQubits_;
    AmpVector amps_;
    ExecPolicy policy_;
};

/**
 * <a|b> = sum_i conj(a_i) b_i, computed with the deterministic chunk-ordered
 * reduction (a's ExecPolicy), so the result is bit-identical for every
 * thread count. This is the primitive behind native <psi|P|psi> expectation
 * values in the state-vector backend session.
 */
Complex innerProduct(const StateVector& a, const StateVector& b);

} // namespace qkc

#endif // QKC_STATEVECTOR_STATE_VECTOR_H
