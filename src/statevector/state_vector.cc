#include "statevector/state_vector.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qkc {

namespace {

std::size_t
checkedDimension(std::size_t numQubits)
{
    if (numQubits == 0 || numQubits > 30)
        throw std::invalid_argument("StateVector: qubit count out of range");
    return std::size_t{1} << numQubits;
}

} // namespace

StateVector::StateVector(std::size_t numQubits)
    : numQubits_(numQubits), amps_(checkedDimension(numQubits))
{
    amps_[0] = 1.0;
}

void
StateVector::applySingleQubit(const Matrix& m, std::size_t qubit)
{
    assert(m.rows() == 2 && m.cols() == 2 && qubit < numQubits_);
    const std::size_t bit = numQubits_ - 1 - qubit;
    const std::uint64_t stride = std::uint64_t{1} << bit;
    const std::uint64_t dim = amps_.size();
    const Complex m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);

    // Iterate over all indices with the target bit clear; the partner index
    // has it set. The two nested loops walk contiguous blocks for locality.
    for (std::uint64_t block = 0; block < dim; block += stride * 2) {
        for (std::uint64_t off = 0; off < stride; ++off) {
            const std::uint64_t i0 = block | off;
            const std::uint64_t i1 = i0 | stride;
            const Complex a0 = amps_[i0];
            const Complex a1 = amps_[i1];
            amps_[i0] = m00 * a0 + m01 * a1;
            amps_[i1] = m10 * a0 + m11 * a1;
        }
    }
}

void
StateVector::applyTwoQubit(const Matrix& m, std::size_t q0, std::size_t q1)
{
    assert(m.rows() == 4 && m.cols() == 4);
    assert(q0 < numQubits_ && q1 < numQubits_ && q0 != q1);
    const std::uint64_t s0 = std::uint64_t{1} << (numQubits_ - 1 - q0);
    const std::uint64_t s1 = std::uint64_t{1} << (numQubits_ - 1 - q1);
    const std::uint64_t mask = s0 | s1;
    const std::uint64_t dim = amps_.size();

    Complex in[4], out[4];
    for (std::uint64_t base = 0; base < dim; ++base) {
        if (base & mask)
            continue;
        const std::uint64_t idx[4] = {base, base | s1, base | s0,
                                      base | s0 | s1};
        for (int k = 0; k < 4; ++k)
            in[k] = amps_[idx[k]];
        for (int r = 0; r < 4; ++r) {
            out[r] = Complex{};
            for (int c = 0; c < 4; ++c)
                out[r] += m(r, c) * in[c];
        }
        for (int k = 0; k < 4; ++k)
            amps_[idx[k]] = out[k];
    }
}

void
StateVector::applyThreeQubit(const Matrix& m, std::size_t q0, std::size_t q1,
                             std::size_t q2)
{
    assert(m.rows() == 8 && m.cols() == 8);
    assert(q0 != q1 && q1 != q2 && q0 != q2);
    const std::uint64_t s0 = std::uint64_t{1} << (numQubits_ - 1 - q0);
    const std::uint64_t s1 = std::uint64_t{1} << (numQubits_ - 1 - q1);
    const std::uint64_t s2 = std::uint64_t{1} << (numQubits_ - 1 - q2);
    const std::uint64_t mask = s0 | s1 | s2;
    const std::uint64_t dim = amps_.size();

    Complex in[8], out[8];
    for (std::uint64_t base = 0; base < dim; ++base) {
        if (base & mask)
            continue;
        std::uint64_t idx[8];
        for (int k = 0; k < 8; ++k) {
            idx[k] = base | ((k & 4) ? s0 : 0) | ((k & 2) ? s1 : 0) |
                     ((k & 1) ? s2 : 0);
        }
        for (int k = 0; k < 8; ++k)
            in[k] = amps_[idx[k]];
        for (int r = 0; r < 8; ++r) {
            out[r] = Complex{};
            for (int c = 0; c < 8; ++c)
                out[r] += m(r, c) * in[c];
        }
        for (int k = 0; k < 8; ++k)
            amps_[idx[k]] = out[k];
    }
}

double
StateVector::norm() const
{
    double n = 0.0;
    for (const Complex& a : amps_)
        n += norm2(a);
    return n;
}

void
StateVector::normalize()
{
    double n = norm();
    assert(n > 0.0);
    double inv = 1.0 / std::sqrt(n);
    for (Complex& a : amps_)
        a *= inv;
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        probs[i] = norm2(amps_[i]);
    return probs;
}

} // namespace qkc
