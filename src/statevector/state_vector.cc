#include "statevector/state_vector.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qkc {

namespace {

std::size_t
checkedDimension(std::size_t numQubits)
{
    if (numQubits == 0 || numQubits > 30)
        throw std::invalid_argument("StateVector: qubit count out of range");
    return std::size_t{1} << numQubits;
}

} // namespace

StateVector::StateVector(std::size_t numQubits)
    : numQubits_(numQubits), amps_(checkedDimension(numQubits))
{
    amps_[0] = 1.0;
}

void
StateVector::applySingleQubit(const Matrix& m, std::size_t qubit)
{
    assert(m.rows() == 2 && m.cols() == 2 && qubit < numQubits_);
    apply(compileKernel(m, {bitOf(qubit)}));
}

void
StateVector::applyTwoQubit(const Matrix& m, std::size_t q0, std::size_t q1)
{
    assert(m.rows() == 4 && m.cols() == 4);
    assert(q0 < numQubits_ && q1 < numQubits_ && q0 != q1);
    apply(compileKernel(m, {bitOf(q0), bitOf(q1)}));
}

void
StateVector::applyThreeQubit(const Matrix& m, std::size_t q0, std::size_t q1,
                             std::size_t q2)
{
    assert(m.rows() == 8 && m.cols() == 8);
    assert(q0 != q1 && q1 != q2 && q0 != q2);
    apply(compileKernel(m, {bitOf(q0), bitOf(q1), bitOf(q2)}));
}

void
StateVector::apply(const GateKernel& kernel, const Complex& preScale)
{
    applyKernel(kernel, amps_.data(), amps_.size(), policy_, preScale);
}

double
StateVector::normAfter(const GateKernel& kernel) const
{
    return normAfterKernel(kernel, amps_.data(), amps_.size(), policy_);
}

double
StateVector::norm() const
{
    return parallelSum(policy_, amps_.size(),
                       [this](std::uint64_t b, std::uint64_t e) {
        double partial = 0.0;
        for (std::uint64_t i = b; i < e; ++i)
            partial += norm2(amps_[i]);
        return partial;
    });
}

void
StateVector::normalize()
{
    double n = norm();
    assert(n > 0.0);
    const double inv = 1.0 / std::sqrt(n);
    parallelFor(policy_, amps_.size(),
                [this, inv](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i)
            amps_[i] *= inv;
    });
}

Complex
innerProduct(const StateVector& a, const StateVector& b)
{
    if (a.dimension() != b.dimension())
        throw std::invalid_argument("innerProduct: dimension mismatch");
    const Complex* pa = a.data();
    const Complex* pb = b.data();
    const ExecPolicy& policy = a.execPolicy();
    const std::uint64_t n = a.dimension();

    // One pass for both components (the sum is memory-bandwidth-bound):
    // per-chunk {re, im} partials combined in chunk order, so the result
    // is bit-identical for every thread count, exactly like parallelSum.
    const std::uint64_t grain = policy.grain > 0 ? policy.grain : 1;
    const std::uint64_t numChunks = n == 0 ? 0 : (n + grain - 1) / grain;
    std::vector<Complex> partials(numChunks, Complex{0.0, 0.0});
    parallelForChunks(policy, n,
                      [&](std::size_t chunk, std::uint64_t s,
                          std::uint64_t e) {
        double re = 0.0;
        double im = 0.0;
        for (std::uint64_t i = s; i < e; ++i) {
            re += pa[i].real() * pb[i].real() + pa[i].imag() * pb[i].imag();
            im += pa[i].real() * pb[i].imag() - pa[i].imag() * pb[i].real();
        }
        partials[chunk] = Complex{re, im};
    });
    Complex total{0.0, 0.0};
    for (const Complex& p : partials)
        total += p;
    return total;
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    parallelFor(policy_, amps_.size(),
                [this, &probs](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i)
            probs[i] = norm2(amps_[i]);
    });
    return probs;
}

} // namespace qkc
