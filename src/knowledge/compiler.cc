#include "knowledge/compiler.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "util/graph.h"
#include "util/min_fill.h"

namespace qkc {

namespace {

using ClauseList = std::vector<Clause>;

/** Lexicographic canonical key of a (literal-sorted) clause list. */
std::string
canonicalKey(const ClauseList& clauses)
{
    std::vector<const Clause*> order;
    order.reserve(clauses.size());
    for (const Clause& c : clauses)
        order.push_back(&c);
    std::sort(order.begin(), order.end(),
              [](const Clause* a, const Clause* b) { return *a < *b; });
    std::string key;
    for (const Clause* c : order) {
        for (int lit : *c) {
            char buf[4];
            std::memcpy(buf, &lit, 4);
            key.append(buf, 4);
        }
        char zero[4] = {0, 0, 0, 0};
        key.append(zero, 4);
    }
    return key;
}

/**
 * Conditions `clauses` on `lit`: satisfied clauses are dropped and the
 * complementary literal is removed. Returns false on an empty clause
 * (conflict), leaving `out` unspecified.
 */
bool
condition(const ClauseList& clauses, int lit, ClauseList& out)
{
    out.clear();
    out.reserve(clauses.size());
    for (const Clause& c : clauses) {
        bool satisfied = false;
        for (int l : c) {
            if (l == lit) {
                satisfied = true;
                break;
            }
        }
        if (satisfied)
            continue;
        Clause reduced;
        reduced.reserve(c.size());
        for (int l : c) {
            if (l != -lit)
                reduced.push_back(l);
        }
        if (reduced.empty())
            return false;
        out.push_back(std::move(reduced));
    }
    return true;
}

/** The DPLL-to-d-DNNF compilation engine for one CNF. */
class CompilerRun {
  public:
    CompilerRun(const Cnf& cnf, const CompileOptions& options,
                CompileStats& stats)
        : cnf_(cnf), options_(options), stats_(stats)
    {
        buildStaticOrder();
    }

    ArithmeticCircuit run()
    {
        ClauseList clauses = cnf_.clauses;
        for (Clause& c : clauses) {
            std::sort(c.begin(), c.end(), [](int a, int b) {
                return std::abs(a) != std::abs(b) ? std::abs(a) < std::abs(b)
                                                  : a < b;
            });
        }
        std::vector<int> scope(cnf_.numVars());
        for (std::size_t i = 0; i < scope.size(); ++i)
            scope[i] = static_cast<int>(i + 1);

        AcNodeId root = compileFormula(std::move(clauses), std::move(scope));
        ac_.setRoot(root);
        stats_.cacheEntries = cache_.size();
        return std::move(ac_);
    }

  private:
    bool isBranchable(int var) const
    {
        return cnf_.vars[var - 1].kind != CnfVarKind::Param;
    }

    /** AC leaf for an assigned literal (paper Section 3.3's leaf kinds). */
    AcNodeId leafFor(int lit)
    {
        const CnfVariable& info = cnf_.vars[std::abs(lit) - 1];
        switch (info.kind) {
          case CnfVarKind::Param:
            return lit > 0 ? ac_.param(info.paramId) : ac_.one();
          case CnfVarKind::BinaryIndicator:
            if (!info.query && options_.elideInternalStates)
                return ac_.one();
            return ac_.indicator(info.bnVar, lit > 0 ? 1 : 0);
          case CnfVarKind::OneHotIndicator:
            // The negative literal of a one-hot member has weight 1.
            if (lit < 0)
                return ac_.one();
            return ac_.indicator(info.bnVar, info.value);
        }
        return ac_.one();
    }

    /**
     * Factor for a variable that became unconstrained: both values are
     * consistent Feynman paths, so query variables contribute the smoothing
     * sum lambda_0 + lambda_1 and elided internals the multiplicity 2.
     */
    AcNodeId freeFactor(int var)
    {
        const CnfVariable& info = cnf_.vars[var - 1];
        if (info.kind == CnfVarKind::Param) {
            throw std::logic_error(
                "KnowledgeCompiler: weight variable left unconstrained; "
                "the encoding must use equivalences");
        }
        if (info.kind == CnfVarKind::OneHotIndicator) {
            throw std::logic_error(
                "KnowledgeCompiler: one-hot indicator left unconstrained");
        }
        if (!info.query && options_.elideInternalStates)
            return ac_.constant(Complex{2.0});
        return ac_.add(
            {ac_.indicator(info.bnVar, 0), ac_.indicator(info.bnVar, 1)});
    }

    /**
     * Compiles a clause list responsible for exactly the variables in
     * `scope`. Invariant: the returned node's value equals the weighted sum
     * over all assignments of scope variables satisfying the clauses.
     */
    AcNodeId compileFormula(ClauseList clauses, std::vector<int> scope)
    {
        std::vector<AcNodeId> factors;

        // Unit propagation. Assigned variables leave the scope and deposit
        // their leaf weight.
        bool changed = true;
        while (changed) {
            changed = false;
            for (const Clause& c : clauses) {
                if (c.size() != 1)
                    continue;
                int lit = c[0];
                factors.push_back(leafFor(lit));
                ClauseList reduced;
                if (!condition(clauses, lit, reduced))
                    return ac_.zero();
                clauses = std::move(reduced);
                scope.erase(
                    std::remove(scope.begin(), scope.end(), std::abs(lit)),
                    scope.end());
                changed = true;
                break;
            }
        }

        if (clauses.empty()) {
            for (int v : scope)
                factors.push_back(freeFactor(v));
            return ac_.mul(std::move(factors));
        }

        // Connected components of the residual formula.
        std::vector<std::vector<std::size_t>> componentClauses;
        std::vector<std::vector<int>> componentVars;
        splitComponents(clauses, componentClauses, componentVars);
        stats_.components += componentClauses.size() > 1
                                 ? componentClauses.size()
                                 : 0;

        std::vector<bool> covered(cnf_.numVars() + 1, false);
        for (const auto& vars : componentVars)
            for (int v : vars)
                covered[v] = true;

        for (std::size_t k = 0; k < componentClauses.size(); ++k) {
            ClauseList sub;
            sub.reserve(componentClauses[k].size());
            for (std::size_t ci : componentClauses[k])
                sub.push_back(clauses[ci]);
            factors.push_back(compileComponent(std::move(sub),
                                               componentVars[k]));
        }

        // Scope variables in no residual clause are free.
        for (int v : scope) {
            if (!covered[v])
                factors.push_back(freeFactor(v));
        }
        return ac_.mul(std::move(factors));
    }

    /** Compiles one connected component (unit-free, nonempty). */
    AcNodeId compileComponent(ClauseList clauses, const std::vector<int>& vars)
    {
        std::string key;
        if (options_.componentCaching) {
            key = canonicalKey(clauses);
            auto it = cache_.find(key);
            if (it != cache_.end()) {
                ++stats_.cacheHits;
                return it->second;
            }
        }

        int x = pickVariable(clauses, vars);
        ++stats_.decisions;

        std::vector<int> subScope;
        subScope.reserve(vars.size() - 1);
        for (int v : vars) {
            if (v != x)
                subScope.push_back(v);
        }

        AcNodeId branches[2];
        for (int sign = 0; sign < 2; ++sign) {
            int lit = sign == 0 ? x : -x;
            ClauseList reduced;
            if (!condition(clauses, lit, reduced)) {
                branches[sign] = ac_.zero();
                continue;
            }
            AcNodeId sub = compileFormula(std::move(reduced), subScope);
            branches[sign] = ac_.mul({leafFor(lit), sub});
        }
        AcNodeId node = ac_.add({branches[0], branches[1]});

        if (options_.componentCaching)
            cache_.emplace(std::move(key), node);
        return node;
    }

    /** Decision variable choice (Section 3.2.2's elimination-order knob). */
    int pickVariable(const ClauseList& clauses, const std::vector<int>& vars)
    {
        if (options_.heuristic == DecisionHeuristic::Dynamic) {
            std::unordered_map<int, std::size_t> freq;
            for (const Clause& c : clauses)
                for (int lit : c)
                    if (isBranchable(std::abs(lit)))
                        ++freq[std::abs(lit)];
            int best = 0;
            std::size_t bestCount = 0;
            for (auto [v, count] : freq) {
                if (count > bestCount ||
                    (count == bestCount && v < best)) {
                    best = v;
                    bestCount = count;
                }
            }
            if (best != 0)
                return best;
        } else {
            int best = 0;
            std::size_t bestPos = SIZE_MAX;
            for (int v : vars) {
                if (!isBranchable(v))
                    continue;
                if (staticPos_[v] < bestPos) {
                    bestPos = staticPos_[v];
                    best = v;
                }
            }
            if (best != 0)
                return best;
        }
        throw std::logic_error(
            "KnowledgeCompiler: component with no branchable variable");
    }

    /** Splits residual clauses into connected components. */
    void splitComponents(const ClauseList& clauses,
                         std::vector<std::vector<std::size_t>>& compClauses,
                         std::vector<std::vector<int>>& compVars)
    {
        const std::size_t m = clauses.size();
        if (!options_.componentDecomposition) {
            compClauses.assign(1, {});
            compVars.assign(1, {});
            std::vector<bool> seen(cnf_.numVars() + 1, false);
            for (std::size_t i = 0; i < m; ++i) {
                compClauses[0].push_back(i);
                for (int lit : clauses[i]) {
                    int v = std::abs(lit);
                    if (!seen[v]) {
                        seen[v] = true;
                        compVars[0].push_back(v);
                    }
                }
            }
            return;
        }

        // Union-find over clause indices through shared variables.
        std::vector<std::size_t> parent(m);
        for (std::size_t i = 0; i < m; ++i)
            parent[i] = i;
        std::function<std::size_t(std::size_t)> find =
            [&](std::size_t a) -> std::size_t {
            while (parent[a] != a) {
                parent[a] = parent[parent[a]];
                a = parent[a];
            }
            return a;
        };
        std::unordered_map<int, std::size_t> firstClauseOfVar;
        for (std::size_t i = 0; i < m; ++i) {
            for (int lit : clauses[i]) {
                int v = std::abs(lit);
                auto [it, inserted] = firstClauseOfVar.emplace(v, i);
                if (!inserted) {
                    std::size_t ra = find(it->second);
                    std::size_t rb = find(i);
                    if (ra != rb)
                        parent[rb] = ra;
                }
            }
        }

        std::unordered_map<std::size_t, std::size_t> rootToComp;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t r = find(i);
            auto [it, inserted] = rootToComp.emplace(r, compClauses.size());
            if (inserted) {
                compClauses.emplace_back();
                compVars.emplace_back();
            }
            compClauses[it->second].push_back(i);
        }
        std::vector<bool> seen(cnf_.numVars() + 1, false);
        for (std::size_t k = 0; k < compClauses.size(); ++k) {
            for (std::size_t ci : compClauses[k]) {
                for (int lit : clauses[ci]) {
                    int v = std::abs(lit);
                    if (!seen[v]) {
                        seen[v] = true;
                        compVars[k].push_back(v);
                    }
                }
            }
            // Reset marks for the next component.
            for (std::size_t ci : compClauses[k])
                for (int lit : clauses[ci])
                    seen[std::abs(lit)] = false;
        }
    }

    /** Static decision positions for Lexicographic / MinFill. */
    void buildStaticOrder()
    {
        staticPos_.assign(cnf_.numVars() + 1, SIZE_MAX);
        if (options_.heuristic == DecisionHeuristic::Lexicographic ||
            options_.heuristic == DecisionHeuristic::Dynamic) {
            for (std::size_t v = 1; v <= cnf_.numVars(); ++v)
                staticPos_[v] = v;
            return;
        }

        // Min-fill over the indicator-variable interaction graph. Weight
        // variables are excluded: they are never branched on and would blow
        // up the ordering computation.
        std::vector<int> indicatorVars;
        std::vector<std::size_t> compact(cnf_.numVars() + 1, SIZE_MAX);
        for (std::size_t v = 1; v <= cnf_.numVars(); ++v) {
            if (isBranchable(static_cast<int>(v))) {
                compact[v] = indicatorVars.size();
                indicatorVars.push_back(static_cast<int>(v));
            }
        }
        Graph g(indicatorVars.size());
        for (const Clause& c : cnf_.clauses) {
            std::vector<std::size_t> members;
            for (int lit : c) {
                std::size_t idx = compact[std::abs(lit)];
                if (idx != SIZE_MAX)
                    members.push_back(idx);
            }
            for (std::size_t i = 0; i < members.size(); ++i)
                for (std::size_t j = i + 1; j < members.size(); ++j)
                    g.addEdge(members[i], members[j]);
        }
        // Branch on variables in REVERSE elimination order: the last
        // variables a min-fill elimination removes are the top separators
        // of the induced tree decomposition, and deciding them first makes
        // the residual formula fall apart into components.
        auto order = minFillOrdering(g);
        for (std::size_t pos = 0; pos < order.size(); ++pos)
            staticPos_[indicatorVars[order[pos]]] = order.size() - pos;
    }

    const Cnf& cnf_;
    const CompileOptions& options_;
    CompileStats& stats_;
    ArithmeticCircuit ac_;
    std::vector<std::size_t> staticPos_;
    std::unordered_map<std::string, AcNodeId> cache_;
};

} // namespace

ArithmeticCircuit
KnowledgeCompiler::compile(const Cnf& cnf)
{
    stats_ = CompileStats{};
    CompilerRun run(cnf, options_, stats_);
    return run.run();
}

} // namespace qkc
