#ifndef QKC_KNOWLEDGE_COMPILER_H
#define QKC_KNOWLEDGE_COMPILER_H

#include <cstdint>
#include <vector>

#include "ac/arithmetic_circuit.h"
#include "cnf/cnf.h"

namespace qkc {

/**
 * Decision-variable ordering for the exhaustive DPLL search (the paper's
 * Section 3.2.2 "qubit state elimination order" optimization).
 */
enum class DecisionHeuristic : std::uint8_t {
    /** Follow CNF variable index order, i.e. qubit/time lexicographic. */
    Lexicographic,
    /**
     * Follow a min-fill elimination order of the CNF primal graph — the
     * structure-aware stand-in for the paper's hypergraph partitioning.
     */
    MinFill,
    /** Most-frequent variable within the current component (dynamic). */
    Dynamic,
};

/** Compiler configuration. */
struct CompileOptions {
    DecisionHeuristic heuristic = DecisionHeuristic::MinFill;

    /** Cache compiled components keyed by their canonical clause set. */
    bool componentCaching = true;

    /** Split residual formulas into disconnected components. */
    bool componentDecomposition = true;

    /**
     * Existentially elide non-query indicator variables: initial and
     * intermediate qubit states carry no indicator leaves and are summed
     * away inside the circuit (Section 3.2.2, optimization 1). Disabling
     * emits indicators for every qubit-state variable (used by ablations;
     * the resulting AC answers queries about internal states too).
     */
    bool elideInternalStates = true;
};

/** Compiler instrumentation counters. */
struct CompileStats {
    std::size_t decisions = 0;
    std::size_t cacheHits = 0;
    std::size_t cacheEntries = 0;
    std::size_t components = 0;
};

/**
 * Compiles a CNF into a smooth complex-weighted arithmetic circuit by
 * exhaustive DPLL with unit propagation, connected-component decomposition,
 * and component caching — our from-scratch equivalent of the c2d knowledge
 * compiler (paper Section 3.2.2).
 *
 * The weighted model count of the result under an evidence setting equals
 * the sum of path amplitudes consistent with that evidence. Only indicator
 * variables are branched on; weight variables are forced by unit
 * propagation thanks to the equivalence encoding.
 */
class KnowledgeCompiler {
  public:
    explicit KnowledgeCompiler(CompileOptions options = {})
        : options_(options)
    {
    }

    /** Compiles `cnf`; the returned circuit's root is set. */
    ArithmeticCircuit compile(const Cnf& cnf);

    const CompileStats& stats() const { return stats_; }

  private:
    CompileOptions options_;
    CompileStats stats_;
};

} // namespace qkc

#endif // QKC_KNOWLEDGE_COMPILER_H
